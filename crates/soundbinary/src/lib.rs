//! SoundBinary — the binary asynchronous session subtyping baseline
//! (Bravetti, Carbone, Lange, Yoshida, Zavattaro, LMCS 2021) benchmarked
//! against Rumpsteak's algorithm in Fig 7 of the paper.
//!
//! The algorithm decides (soundly, incompletely) whether one **two-party**
//! session type is an asynchronous subtype of another by simulating the
//! candidate subtype against the supertype while accumulating an **input
//! context**: a tree of inputs of the supertype that the subtype has
//! anticipated outputs across. Each output step must traverse *every* leaf
//! of the context, so nested choices multiply the simulation frontier —
//! the exponential behaviour the paper measures.
//!
//! Differences from the Haskell artifact (documented in DESIGN.md): we
//! bound the input-context depth and total step budget instead of running
//! the full divergence analysis; exceeding a bound answers `false`, which
//! preserves soundness.
//!
//! # Example
//!
//! ```
//! use soundbinary::{is_subtype, Limits};
//! use theory::local;
//!
//! let sup = local::parse("rec x . p?ready . p!value . x").unwrap();
//! let sub = local::parse("p!value . rec x . p?ready . p!value . x").unwrap();
//! assert_eq!(is_subtype(&sub, &sup, Limits::default()), Ok(true));
//! ```

use std::fmt;

use theory::local::{LocalBranch, LocalType};
use theory::name::Name;
use theory::sort::Sort;

/// Resource limits that guarantee termination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum depth of the accumulated input context.
    pub max_context_depth: usize,
    /// Maximum number of simulation steps overall.
    pub max_steps: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_context_depth: 1024,
            max_steps: 1_000_000,
        }
    }
}

/// Errors for inputs outside the algorithm's domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinaryError {
    /// The types mention more than one partner: this baseline is binary.
    NotBinary {
        /// First peer seen.
        first: Name,
        /// Conflicting second peer.
        second: Name,
    },
    /// A recursion variable was unbound.
    UnboundVariable(Name),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::NotBinary { first, second } => {
                write!(f, "not a binary session: peers {first} and {second}")
            }
            BinaryError::UnboundVariable(var) => write!(f, "unbound variable {var}"),
        }
    }
}

impl std::error::Error for BinaryError {}

/// The input context `𝒜`: a tree of anticipated inputs whose leaves carry
/// the residual supertype.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Context {
    /// A residual supertype term.
    Leaf(LocalType),
    /// An input node: one subtree per receivable label.
    Node(Vec<(Name, Sort, Context)>),
}

impl Context {
    fn depth(&self) -> usize {
        match self {
            Context::Leaf(_) => 0,
            Context::Node(children) => {
                1 + children
                    .iter()
                    .map(|(_, _, c)| c.depth())
                    .max()
                    .unwrap_or(0)
            }
        }
    }
}

/// Checks that `sub ≤ sup` for binary asynchronous session subtyping.
///
/// Returns `Ok(false)` both for genuine non-subtypes and when a resource
/// limit is hit (the algorithm is sound, not complete).
pub fn is_subtype(sub: &LocalType, sup: &LocalType, limits: Limits) -> Result<bool, BinaryError> {
    check_binary(sub)?;
    check_binary(sup)?;
    check_closed(sub, &mut Vec::new())?;
    check_closed(sup, &mut Vec::new())?;
    let mut sim = Simulation {
        limits,
        steps: 0,
        path: Vec::new(),
    };
    Ok(sim.step(sub.clone(), Context::Leaf(sup.clone())))
}

fn check_binary(t: &LocalType) -> Result<(), BinaryError> {
    let peers: Vec<Name> = t.peers().into_iter().collect();
    if peers.len() > 1 {
        return Err(BinaryError::NotBinary {
            first: peers[0].clone(),
            second: peers[1].clone(),
        });
    }
    Ok(())
}

fn check_closed(t: &LocalType, bound: &mut Vec<Name>) -> Result<(), BinaryError> {
    match t {
        LocalType::End => Ok(()),
        LocalType::Var(v) => {
            if bound.contains(v) {
                Ok(())
            } else {
                Err(BinaryError::UnboundVariable(v.clone()))
            }
        }
        LocalType::Rec { var, body } => {
            bound.push(var.clone());
            let result = check_closed(body, bound);
            bound.pop();
            result
        }
        LocalType::Select { branches, .. } | LocalType::Branch { branches, .. } => branches
            .iter()
            .try_for_each(|b| check_closed(&b.continuation, bound)),
    }
}

struct Simulation {
    limits: Limits,
    steps: usize,
    /// Configurations on the current path; a repeat discharges the
    /// obligation coinductively.
    path: Vec<(LocalType, Context)>,
}

impl Simulation {
    fn step(&mut self, sub: LocalType, context: Context) -> bool {
        self.steps += 1;
        if self.steps > self.limits.max_steps || context.depth() > self.limits.max_context_depth {
            return false;
        }

        let sub = unfold_fully(sub);
        let config = (sub.clone(), context.clone());
        if self.path.contains(&config) {
            return true;
        }

        match &sub {
            LocalType::End => match context {
                Context::Leaf(sup) => matches!(unfold_fully(sup), LocalType::End),
                Context::Node(_) => false,
            },
            LocalType::Branch { branches, .. } => {
                let branches = branches.clone();
                self.path.push(config);
                let result = self.step_input(&branches, context);
                self.path.pop();
                result
            }
            LocalType::Select { branches, .. } => {
                let branches = branches.clone();
                self.path.push(config);
                let result = self.step_output(&branches, context);
                self.path.pop();
                result
            }
            LocalType::Rec { .. } | LocalType::Var(_) => {
                unreachable!("unfold_fully removes top-level binders")
            }
        }
    }

    /// Subtype input: consume the root of the input context (anticipated
    /// inputs are received now) or match the supertype's input directly.
    /// Input is contravariant: the subtype must accept every label the
    /// context/supertype can produce.
    fn step_input(&mut self, branches: &[LocalBranch], context: Context) -> bool {
        match context {
            Context::Node(children) => children.into_iter().all(|(label, sort, child)| {
                match branches.iter().find(|b| b.label == label) {
                    Some(branch) if sort.is_subsort_of(&branch.sort) => {
                        self.step(branch.continuation.clone(), child)
                    }
                    _ => false,
                }
            }),
            Context::Leaf(sup) => match unfold_fully(sup) {
                LocalType::Branch {
                    branches: sup_branches,
                    ..
                } => sup_branches.into_iter().all(|sup_branch| {
                    match branches.iter().find(|b| b.label == sup_branch.label) {
                        Some(branch) if sup_branch.sort.is_subsort_of(&branch.sort) => self.step(
                            branch.continuation.clone(),
                            Context::Leaf(sup_branch.continuation),
                        ),
                        _ => false,
                    }
                }),
                _ => false,
            },
        }
    }

    /// Subtype output: saturate the context by absorbing supertype inputs
    /// into it (output anticipation, R2), then require every leaf to offer
    /// each selected label. Output is covariant: the subtype's labels must
    /// be a subset of every leaf's.
    fn step_output(&mut self, branches: &[LocalBranch], context: Context) -> bool {
        let saturated = match saturate(context, self.limits.max_context_depth) {
            Some(context) => context,
            None => return false,
        };
        branches.iter().all(
            |branch| match select_leaf(&saturated, &branch.label, &branch.sort) {
                Some(next) => self.step(branch.continuation.clone(), next),
                None => false,
            },
        )
    }
}

/// Unfolds all top-level `rec` binders.
fn unfold_fully(mut t: LocalType) -> LocalType {
    // Guarded recursion guarantees progress; unguarded types would diverge,
    // so cap the number of unfoldings defensively.
    for _ in 0..64 {
        match t {
            LocalType::Rec { .. } => t = t.unfold(),
            other => return other,
        }
    }
    t
}

/// Replaces every leaf whose unfolding is an input by an input node, until
/// all leaves are outputs or `end`. Returns `None` on exceeding `max_depth`.
fn saturate(context: Context, max_depth: usize) -> Option<Context> {
    if max_depth == 0 {
        return None;
    }
    match context {
        Context::Leaf(sup) => match unfold_fully(sup) {
            LocalType::Branch { branches, .. } => {
                let children = branches
                    .into_iter()
                    .map(|b| {
                        saturate(Context::Leaf(b.continuation), max_depth - 1)
                            .map(|c| (b.label, b.sort, c))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Context::Node(children))
            }
            other => Some(Context::Leaf(other)),
        },
        Context::Node(children) => {
            let children = children
                .into_iter()
                .map(|(label, sort, child)| {
                    saturate(child, max_depth - 1).map(|c| (label, sort, c))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Context::Node(children))
        }
    }
}

/// For an output of `label`, steps every leaf of the (saturated) context
/// through that label; `None` if some leaf cannot offer it.
fn select_leaf(context: &Context, label: &Name, sort: &Sort) -> Option<Context> {
    match context {
        Context::Leaf(sup) => match sup {
            LocalType::Select { branches, .. } => {
                let branch = branches.iter().find(|b| &b.label == label)?;
                if !sort.is_subsort_of(&branch.sort) {
                    return None;
                }
                Some(Context::Leaf(branch.continuation.clone()))
            }
            _ => None,
        },
        Context::Node(children) => {
            let children = children
                .iter()
                .map(|(l, s, child)| {
                    select_leaf(child, label, sort).map(|c| (l.clone(), s.clone(), c))
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Context::Node(children))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use theory::local;

    fn check(sub: &str, sup: &str) -> bool {
        let sub = local::parse(sub).unwrap();
        let sup = local::parse(sup).unwrap();
        is_subtype(&sub, &sup, Limits::default()).unwrap()
    }

    #[test]
    fn reflexive() {
        for t in [
            "end",
            "p!a.end",
            "rec x . p?ready . p!value . x",
            "rec x . p?r . +{ p!v.x, p!s.end }",
        ] {
            assert!(check(t, t), "{t}");
        }
    }

    #[test]
    fn example2_directions() {
        assert!(check("p!l2.p?l1.end", "p?l1.p!l2.end"));
        assert!(!check("p?l2.p!l1.end", "p!l1.p?l2.end"));
    }

    #[test]
    fn unrolled_stream_source() {
        let sup = "rec x . p?ready . p!value . x";
        let sub = "p!value . p!value . rec x . p?ready . p!value . x";
        assert!(check(sub, sup));
        assert!(!check(sup, sub));
    }

    #[test]
    fn output_covariance_input_contravariance() {
        assert!(check("p!a.end", "+{ p!a.end, p!b.end }"));
        assert!(!check("+{ p!a.end, p!b.end }", "p!a.end"));
        assert!(check("&{ p?a.end, p?b.end }", "p?a.end"));
        assert!(!check("p?a.end", "&{ p?a.end, p?b.end }"));
    }

    #[test]
    fn forgotten_input_rejected() {
        // Binary rendition of Fig A.14: the subtype never consumes lp.
        assert!(!check("rec t . p?l . t", "p?lp . rec t . p?l . t"));
    }

    #[test]
    fn rejects_multiparty_types() {
        let sub = local::parse("p!a.q!b.end").unwrap();
        let sup = local::parse("p!a.q!b.end").unwrap();
        assert!(matches!(
            is_subtype(&sub, &sup, Limits::default()),
            Err(BinaryError::NotBinary { .. })
        ));
    }

    #[test]
    fn fully_commuted_loop() {
        // The subtype sends first in every iteration: the context settles
        // into a repeating shape and the simulation closes the loop.
        let sup = "rec x . p?a . p!b . x";
        let sub = "rec x . p!b . p?a . x";
        assert!(check(sub, sup));
    }

    #[test]
    fn limit_exhaustion_is_false_not_hang() {
        let sub = local::parse("rec x . p!b . x").unwrap();
        let sup = local::parse("rec x . p?a . p!b . x").unwrap();
        // The subtype never receives: the context grows forever; limits
        // turn divergence into a sound `false`.
        let limits = Limits {
            max_context_depth: 32,
            max_steps: 10_000,
        };
        assert_eq!(is_subtype(&sub, &sup, limits), Ok(false));
    }

    #[test]
    fn nested_choice_family() {
        // The n = 1 instance of the Fig 7 nested-choice benchmark
        // (Chen et al. [13, Fig 3]).
        let sub = "+{ p!m . &{ p?r.end, p?s.end, p?u.end }, p!p . &{ p?r.end, p?s.end } }";
        let sup = "&{ p?r . +{ p!m.end, p!p.end, p!q.end }, p?s . +{ p!m.end, p!p.end } }";
        assert!(check(sub, sup));
    }
}
