//! Sesh-style synchronous binary session types.
//!
//! Characteristics reproduced from the original:
//!
//! * **rendezvous communication** — sends block until the peer receives
//!   (zero-capacity crossbeam channels), so threads stall on every
//!   message;
//! * **fresh channel per interaction** — each `send`/`choose` allocates a
//!   new channel pair carrying the continuation endpoint, the pattern the
//!   paper identifies as a constant per-message cost;
//! * **duality-typed endpoints** — protocol conformance is enforced by the
//!   [`Session`] trait's `Dual` involution.

use crossbeam::channel::{bounded, Receiver, Sender};

/// A binary session endpoint.
pub trait Session: Sized + core::marker::Send + 'static {
    /// The peer's endpoint type; duality is involutive.
    type Dual: Session<Dual = Self>;

    /// Creates a connected endpoint pair.
    fn new_pair() -> (Self, Self::Dual);
}

/// Error returned when the peer endpoint was dropped mid-protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("peer endpoint disconnected")
    }
}

impl std::error::Error for Disconnected {}

/// Send a `T`, then continue as `S`.
#[must_use = "sessions must be driven to completion"]
pub struct Send<T: core::marker::Send + 'static, S: Session> {
    channel: Sender<(T, S::Dual)>,
}

/// Receive a `T`, then continue as `S`.
#[must_use = "sessions must be driven to completion"]
pub struct Recv<T: core::marker::Send + 'static, S: Session> {
    channel: Receiver<(T, S)>,
}

/// The terminated session.
pub struct End;

impl<T: core::marker::Send + 'static, S: Session> Session for Send<T, S> {
    type Dual = Recv<T, S::Dual>;

    fn new_pair() -> (Self, Self::Dual) {
        // Zero capacity: a rendezvous channel, making sends blocking.
        let (tx, rx) = bounded(0);
        (Self { channel: tx }, Recv { channel: rx })
    }
}

impl<T: core::marker::Send + 'static, S: Session> Session for Recv<T, S> {
    type Dual = Send<T, S::Dual>;

    fn new_pair() -> (Self, Self::Dual) {
        let (there, here) = Send::new_pair();
        (here, there)
    }
}

impl Session for End {
    type Dual = End;

    fn new_pair() -> (Self, Self::Dual) {
        (End, End)
    }
}

impl<T: core::marker::Send + 'static, S: Session> Send<T, S> {
    /// Blocks until the peer receives, then returns the continuation.
    pub fn send(self, value: T) -> Result<S, Disconnected> {
        let (here, there) = S::new_pair();
        self.channel
            .send((value, there))
            .map_err(|_| Disconnected)?;
        Ok(here)
    }
}

impl<T: core::marker::Send + 'static, S: Session> Recv<T, S> {
    /// Blocks until the peer sends, returning value and continuation.
    pub fn recv(self) -> Result<(T, S), Disconnected> {
        self.channel.recv().map_err(|_| Disconnected)
    }
}

impl End {
    /// Closes the session.
    pub fn close(self) {}
}

/// A binary external choice payload: the continuation the chooser picked.
pub enum Branching<L: Session, R: Session> {
    /// The left protocol branch.
    Left(L),
    /// The right protocol branch.
    Right(R),
}

/// Make a binary choice; continue as `L` or `R`.
#[must_use = "sessions must be driven to completion"]
pub struct Choose<L: Session, R: Session> {
    channel: Sender<Branching<L::Dual, R::Dual>>,
}

/// Offer a binary choice made by the peer.
#[must_use = "sessions must be driven to completion"]
pub struct Offer<L: Session, R: Session> {
    channel: Receiver<Branching<L, R>>,
}

impl<L: Session, R: Session> Session for Choose<L, R> {
    type Dual = Offer<L::Dual, R::Dual>;

    fn new_pair() -> (Self, Self::Dual) {
        let (tx, rx) = bounded(0);
        (Self { channel: tx }, Offer { channel: rx })
    }
}

impl<L: Session, R: Session> Session for Offer<L, R> {
    type Dual = Choose<L::Dual, R::Dual>;

    fn new_pair() -> (Self, Self::Dual) {
        let (there, here) = Choose::new_pair();
        (here, there)
    }
}

impl<L: Session, R: Session> Choose<L, R> {
    /// Chooses the left branch.
    pub fn choose_left(self) -> Result<L, Disconnected> {
        let (here, there) = L::new_pair();
        self.channel
            .send(Branching::Left(there))
            .map_err(|_| Disconnected)?;
        Ok(here)
    }

    /// Chooses the right branch.
    pub fn choose_right(self) -> Result<R, Disconnected> {
        let (here, there) = R::new_pair();
        self.channel
            .send(Branching::Right(there))
            .map_err(|_| Disconnected)?;
        Ok(here)
    }
}

impl<L: Session, R: Session> Offer<L, R> {
    /// Waits for the peer's choice.
    pub fn offer(self) -> Result<Branching<L, R>, Disconnected> {
        self.channel.recv().map_err(|_| Disconnected)
    }
}

/// Runs `f` with one endpoint on a fresh OS thread and returns the dual —
/// the `fork` combinator of Sesh.
pub fn fork<S, F>(f: F) -> S::Dual
where
    S: Session,
    F: FnOnce(S) + core::marker::Send + 'static,
{
    let (here, there) = S::new_pair();
    std::thread::spawn(move || f(here));
    there
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        type Client = Send<u32, Recv<u32, End>>;
        let server = fork::<Client, _>(|client| {
            let s = client.send(1).unwrap();
            let (reply, end) = s.recv().unwrap();
            assert_eq!(reply, 2);
            end.close();
        });
        let (ping, s) = server.recv().unwrap();
        assert_eq!(ping, 1);
        s.send(2).unwrap().close();
    }

    #[test]
    fn choice_branches() {
        type Client = Choose<Send<u8, End>, End>;
        let server = fork::<Client, _>(|client| {
            client.choose_left().unwrap().send(7).unwrap().close();
        });
        match server.offer().unwrap() {
            Branching::Left(s) => {
                let (v, end) = s.recv().unwrap();
                assert_eq!(v, 7);
                end.close();
            }
            Branching::Right(_) => panic!("expected left branch"),
        }
    }

    #[test]
    fn disconnect_is_an_error() {
        type Client = Send<u8, End>;
        let (here, there) = Client::new_pair();
        drop(there);
        match here.send(1) {
            Err(Disconnected) => {}
            Ok(_) => panic!("send should fail after peer drop"),
        }
    }

    /// Sends really are synchronous: a send cannot complete before the
    /// matching receive starts.
    #[test]
    fn rendezvous_blocks_sender() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        type Client = Send<u8, End>;
        let received = Arc::new(AtomicBool::new(false));
        let flag = received.clone();
        let server = fork::<Client, _>(move |client| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            flag.store(true, Ordering::SeqCst);
            // Receiving unblocks the main thread's send.
            let _ = client;
        });
        // `server` is Recv; our peer holds Send and would block. Receive
        // after the flag flips.
        let result = server.recv();
        // The peer thread dropped its endpoint without sending.
        assert!(result.is_err());
        assert!(received.load(Ordering::SeqCst));
    }
}
