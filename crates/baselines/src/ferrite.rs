//! Ferrite-style asynchronous binary sessions.
//!
//! Like Ferrite, communication is asynchronous (tasks, not threads), but:
//!
//! * every step allocates a fresh **oneshot channel** carrying the payload
//!   together with the continuation endpoint — Ferrite's judgmental
//!   encoding does the same under the hood;
//! * recursion must be expressed with **boxed recursive futures** rather
//!   than loops (the limitation the paper observes in the streaming
//!   benchmark);
//! * shared state crossing a session boundary must be wrapped in a mutex
//!   ([`Shared`]), mirroring Ferrite's stricter concurrency obligations.

use std::sync::Arc;

use executor::channel::{oneshot, OneshotReceiver, OneshotSender};
use parking_lot::Mutex;

/// An asynchronous binary session endpoint.
pub trait AsyncSession: Sized + Send + 'static {
    /// The peer's endpoint; duality is involutive.
    type Dual: AsyncSession<Dual = Self>;

    /// Creates a connected endpoint pair.
    fn new_pair() -> (Self, Self::Dual);
}

/// Error when the peer endpoint was dropped mid-protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("peer endpoint disconnected")
    }
}

impl std::error::Error for Disconnected {}

/// Send a `T`, then continue as `S`.
#[must_use = "sessions must be driven to completion"]
pub struct SendOnce<T: Send + 'static, S: AsyncSession> {
    channel: OneshotSender<(T, S::Dual)>,
}

/// Receive a `T`, then continue as `S`.
#[must_use = "sessions must be driven to completion"]
pub struct RecvOnce<T: Send + 'static, S: AsyncSession> {
    channel: OneshotReceiver<(T, S)>,
}

/// The terminated session.
pub struct EndOnce;

impl<T: Send + 'static, S: AsyncSession> AsyncSession for SendOnce<T, S> {
    type Dual = RecvOnce<T, S::Dual>;

    fn new_pair() -> (Self, Self::Dual) {
        let (tx, rx) = oneshot();
        (Self { channel: tx }, RecvOnce { channel: rx })
    }
}

impl<T: Send + 'static, S: AsyncSession> AsyncSession for RecvOnce<T, S> {
    type Dual = SendOnce<T, S::Dual>;

    fn new_pair() -> (Self, Self::Dual) {
        let (there, here) = SendOnce::new_pair();
        (here, there)
    }
}

impl AsyncSession for EndOnce {
    type Dual = EndOnce;

    fn new_pair() -> (Self, Self::Dual) {
        (EndOnce, EndOnce)
    }
}

impl<T: Send + 'static, S: AsyncSession> SendOnce<T, S> {
    /// Delivers the value (non-blocking) and returns the continuation.
    ///
    /// A fresh oneshot pair is allocated for the continuation — the
    /// per-step cost characteristic of this encoding.
    pub fn send(self, value: T) -> S {
        let (here, there) = S::new_pair();
        self.channel.send((value, there));
        here
    }
}

impl<T: Send + 'static, S: AsyncSession> RecvOnce<T, S> {
    /// Awaits the value and continuation.
    pub async fn recv(self) -> Result<(T, S), Disconnected> {
        self.channel.await.ok_or(Disconnected)
    }
}

impl EndOnce {
    /// Closes the session.
    pub fn close(self) {}
}

/// A shared cell guarded by a mutex, standing in for Ferrite's shared
/// session channels (the paper notes the sink's output buffer must be
/// mutex-guarded in the Ferrite implementations).
#[derive(Clone)]
pub struct Shared<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Shared<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Runs `f` with exclusive access.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_ping_pong() {
        type Client = SendOnce<u32, RecvOnce<u32, EndOnce>>;
        let rt = executor::Runtime::new(2);
        let (client, server) = Client::new_pair();
        let server_task = rt.spawn(async move {
            let (ping, s) = server.recv().await.unwrap();
            assert_eq!(ping, 1);
            s.send(ping * 2).close();
        });
        let out = rt.block_on(async move {
            let s = client.send(1);
            let (reply, end) = s.recv().await.unwrap();
            end.close();
            reply
        });
        assert_eq!(out, 2);
        rt.block_on(server_task).unwrap();
    }

    #[test]
    fn recursion_via_boxed_futures() {
        use std::future::Future;
        use std::pin::Pin;

        // Ferrite-style recursion: a boxed recursive future that relays n
        // values over per-step oneshot sessions.
        type Step = RecvOnce<u32, EndOnce>;

        fn produce(n: u32, total: u32) -> Pin<Box<dyn Future<Output = u32> + Send>> {
            Box::pin(async move {
                if n == 0 {
                    return total;
                }
                let (client, server) = <Step as AsyncSession>::Dual::new_pair();
                client.send(n).close();
                let (v, end) = server.recv().await.unwrap();
                end.close();
                produce(n - 1, total + v).await
            })
        }

        let rt = executor::Runtime::new(1);
        assert_eq!(rt.block_on(produce(10, 0)), 55);
    }

    #[test]
    fn shared_cell_mutates() {
        let cell = Shared::new(Vec::<u32>::new());
        let clone = cell.clone();
        clone.with(|v| v.push(3));
        assert_eq!(cell.with(|v| v.len()), 1);
    }

    #[test]
    fn disconnected_recv() {
        type Client = SendOnce<u8, EndOnce>;
        let (client, server) = Client::new_pair();
        drop(client);
        let rt = executor::Runtime::new(1);
        assert!(rt.block_on(server.recv()).is_err());
    }
}
