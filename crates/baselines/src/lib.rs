//! Re-implementations of the three Rust session-type frameworks the paper
//! benchmarks Rumpsteak against in Fig 6:
//!
//! * [`sesh`] — synchronous **binary** session types in the style of
//!   Sesh [Kokke 2019]: blocking rendezvous communication and a fresh
//!   channel allocated for every interaction.
//! * [`mpst`] — synchronous **multiparty** sessions in the style of
//!   MultiCrusty [Lagaillardie et al. 2020]: a mesh of blocking binary
//!   channels, one per pair of roles.
//! * [`ferrite`] — **asynchronous** binary sessions in the style of
//!   Ferrite [Chen & Balzer 2021]: oneshot channels allocated per step and
//!   recursion expressed through boxed futures rather than iteration.
//!
//! Each module preserves the performance-relevant characteristics the
//! paper attributes to the original (synchrony, per-interaction channel
//! creation, recursion style); see DESIGN.md for the substitution notes.

pub mod ferrite;
pub mod mpst;
pub mod sesh;
