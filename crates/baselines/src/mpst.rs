//! MultiCrusty-style synchronous multiparty sessions.
//!
//! MultiCrusty represents a multiparty session as a tuple of binary
//! sessions (one per peer) used in a prescribed order. This module
//! reproduces the performance-relevant parts: every role owns one
//! **blocking rendezvous link** per peer, so each message synchronises two
//! OS threads, and every payload is boxed to mirror the per-interaction
//! allocation of the binary-channel encoding.
//!
//! Protocol conformance for the benchmarks is by construction (the
//! benchmark processes are straight-line translations of the local
//! types); the static typing of the original is reproduced by `sesh` for
//! the binary case.

use crossbeam::channel::{bounded, Receiver, Sender};

/// One endpoint of a blocking bidirectional link between two fixed roles.
pub struct SyncLink<M> {
    tx: Sender<Box<M>>,
    rx: Receiver<Box<M>>,
}

/// Error when the peer endpoint was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("peer endpoint disconnected")
    }
}

impl std::error::Error for Disconnected {}

impl<M> SyncLink<M> {
    /// Creates both endpoints of a rendezvous link.
    pub fn pair() -> (Self, Self) {
        let (a_tx, b_rx) = bounded(0);
        let (b_tx, a_rx) = bounded(0);
        (Self { tx: a_tx, rx: a_rx }, Self { tx: b_tx, rx: b_rx })
    }

    /// Blocks until the peer receives.
    pub fn send(&self, message: M) -> Result<(), Disconnected> {
        self.tx.send(Box::new(message)).map_err(|_| Disconnected)
    }

    /// Blocks until the peer sends.
    pub fn recv(&self) -> Result<M, Disconnected> {
        self.rx.recv().map(|m| *m).map_err(|_| Disconnected)
    }
}

/// A full mesh of rendezvous links for `N` roles.
///
/// `mesh::<M, 3>()` returns, for each role `i`, a vector of links indexed
/// by peer (entry `i` itself is absent; peers keep their index order with
/// the self-slot skipped).
// Symmetric double-indexing (`[from][to]` and `[to][from]`) has no
// iterator equivalent without split_at_mut gymnastics.
#[allow(clippy::needless_range_loop)]
pub fn mesh<M, const N: usize>() -> Vec<Vec<SyncLink<M>>> {
    let mut per_role: Vec<Vec<Option<SyncLink<M>>>> =
        (0..N).map(|_| (0..N).map(|_| None).collect()).collect();
    for from in 0..N {
        for to in (from + 1)..N {
            let (a, b) = SyncLink::pair();
            per_role[from][to] = Some(a);
            per_role[to][from] = Some(b);
        }
    }
    per_role
        .into_iter()
        .map(|row| row.into_iter().flatten().collect())
        .collect()
}

/// Index of the link towards `peer` within a role's link vector (the
/// self-slot is skipped).
pub fn link_index(role: usize, peer: usize) -> usize {
    if peer < role {
        peer
    } else {
        peer - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_role_ring_message() {
        let mut roles = mesh::<u32, 3>();
        let c = roles.pop().unwrap();
        let b = roles.pop().unwrap();
        let a = roles.pop().unwrap();

        let h_b = std::thread::spawn(move || {
            // b receives from a, forwards to c.
            let v = b[link_index(1, 0)].recv().unwrap();
            b[link_index(1, 2)].send(v + 1).unwrap();
        });
        let h_c = std::thread::spawn(move || {
            let v = c[link_index(2, 1)].recv().unwrap();
            c[link_index(2, 0)].send(v + 1).unwrap();
        });

        a[link_index(0, 1)].send(1).unwrap();
        let back = a[link_index(0, 2)].recv().unwrap();
        assert_eq!(back, 3);
        h_b.join().unwrap();
        h_c.join().unwrap();
    }

    #[test]
    fn link_index_skips_self() {
        assert_eq!(link_index(0, 1), 0);
        assert_eq!(link_index(0, 2), 1);
        assert_eq!(link_index(1, 0), 0);
        assert_eq!(link_index(1, 2), 1);
        assert_eq!(link_index(2, 0), 0);
        assert_eq!(link_index(2, 1), 1);
    }

    #[test]
    fn disconnected_peer_reports_error() {
        let (a, b) = SyncLink::<u8>::pair();
        drop(b);
        assert_eq!(a.send(1).unwrap_err(), Disconnected);
    }
}
