//! Pull-based metrics endpoint: a dependency-free HTTP/1.0 server
//! exposing every telemetry registry in Prometheus-style text
//! exposition.
//!
//! Observability that only exists post-mortem (drained traces, final
//! JSON artifacts) cannot answer "what is this process doing *now*?".
//! [`start`] binds a TCP listener and serves `GET /metrics` from a
//! single background thread: each scrape calls [`render`], which
//! snapshots the [`channel`](crate::channel),
//! [`transport`](crate::transport), [`hist`](crate::hist) (session
//! lifetimes) and [`scheduler`](crate::scheduler) registries — all
//! lock-free or registration-locked reads, so scraping mid-run costs
//! the workload nothing on its hot paths.
//!
//! The server is deliberately tiny: blocking I/O, one connection at a
//! time, HTTP/1.0 with `Connection: close`, no keep-alive, no TLS, no
//! crates.io dependencies — it exists so a CI job or an operator can
//! `curl` a running distributed role, not to be a web server. The
//! generated distributed skeleton starts it when the
//! `RUMPSTEAK_METRICS` environment variable holds a bind address.
//!
//! Exposition format: `# TYPE` headers followed by
//! `family{label="value"} n` samples. Histograms surface as summaries
//! (`family{...,quantile="0.5"}` plus `_count`/`_sum`/`_max`), which
//! Prometheus and every text-format parser accept. [`render`] works in
//! disabled builds too (registries are empty; only `rumpsteak_up`
//! remains), so the endpoint's presence never depends on the feature.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::hist::HistogramSnapshot;

/// A running metrics endpoint; dropping it shuts the listener down and
/// joins the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // The serving thread is parked in accept(); a throwaway
        // connection unblocks it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and
/// serves `GET /metrics` until the returned [`MetricsServer`] is
/// dropped.
pub fn start(addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let thread = std::thread::Builder::new()
        .name("telemetry-metrics".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A misbehaving scraper only loses its own request.
                    let _ = handle(stream);
                }
            }
        })?;
    Ok(MetricsServer {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

/// Serves one connection: parse the request line, answer, close.
fn handle(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    // Read until the header terminator; cap the head so a hostile
    // client cannot grow the buffer unboundedly.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 4096 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/metrics") | ("GET", "/") => ("200 OK", render()),
        ("GET", _) => ("404 Not Found", "not found\n".to_owned()),
        _ => ("405 Method Not Allowed", "GET only\n".to_owned()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

fn link_labels(from: &str, to: &str) -> String {
    format!(
        "{{from=\"{}\",to=\"{}\"}}",
        escape_label(from),
        escape_label(to)
    )
}

/// Emits one counter/gauge family: a `# TYPE` header plus one sample
/// per row. Families with no rows emit nothing.
fn family(out: &mut String, name: &str, kind: &str, rows: &[(String, u64)]) {
    use std::fmt::Write;
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (labels, value) in rows {
        let _ = writeln!(out, "{name}{labels} {value}");
    }
}

/// Emits one histogram as a Prometheus summary (`quantile` samples plus
/// `_count`, `_sum` and a non-standard `_max`). Empty histograms emit
/// nothing.
fn summary(out: &mut String, name: &str, labels: &str, hist: &HistogramSnapshot) {
    use std::fmt::Write;
    if hist.is_empty() {
        return;
    }
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    let with_quantile = |q: &str| {
        if inner.is_empty() {
            format!("{{quantile=\"{q}\"}}")
        } else {
            format!("{{{inner},quantile=\"{q}\"}}")
        }
    };
    for (q, value) in [
        ("0.5", hist.p50()),
        ("0.9", hist.p90()),
        ("0.99", hist.p99()),
        ("0.999", hist.p999()),
    ] {
        let _ = writeln!(out, "{name}{} {value}", with_quantile(q));
    }
    let _ = writeln!(out, "{name}_count{labels} {}", hist.count);
    let _ = writeln!(out, "{name}_sum{labels} {}", hist.sum);
    let _ = writeln!(out, "{name}_max{labels} {}", hist.max);
}

/// Renders the full exposition document: every registry, one scrape.
pub fn render() -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(4096);
    out.push_str("# TYPE rumpsteak_up gauge\nrumpsteak_up 1\n");

    // Channel registry: data-plane counters, bounds, and the per-link
    // send→recv latency histograms.
    let channels = crate::channel::snapshot();
    let rows = |f: &dyn Fn(&crate::channel::LinkSnapshot) -> u64| -> Vec<(String, u64)> {
        channels
            .iter()
            .map(|link| (link_labels(link.from, link.to), f(link)))
            .collect()
    };
    family(
        &mut out,
        "rumpsteak_channel_sends_total",
        "counter",
        &rows(&|l| l.sends),
    );
    family(
        &mut out,
        "rumpsteak_channel_wakes_total",
        "counter",
        &rows(&|l| l.wakes),
    );
    family(
        &mut out,
        "rumpsteak_channel_batches_total",
        "counter",
        &rows(&|l| l.batches),
    );
    family(
        &mut out,
        "rumpsteak_channel_batched_messages_total",
        "counter",
        &rows(&|l| l.batched_messages),
    );
    family(
        &mut out,
        "rumpsteak_channel_grows_total",
        "counter",
        &rows(&|l| l.grows),
    );
    family(
        &mut out,
        "rumpsteak_channel_shrinks_total",
        "counter",
        &rows(&|l| l.shrinks),
    );
    family(
        &mut out,
        "rumpsteak_channel_pool_hits_total",
        "counter",
        &rows(&|l| l.pool_hits),
    );
    family(
        &mut out,
        "rumpsteak_channel_pool_misses_total",
        "counter",
        &rows(&|l| l.pool_misses),
    );
    family(
        &mut out,
        "rumpsteak_channel_backpressure_parks_total",
        "counter",
        &rows(&|l| l.backpressure_parks),
    );
    family(
        &mut out,
        "rumpsteak_channel_high_watermark",
        "gauge",
        &rows(&|l| l.high_watermark),
    );
    let bounded: Vec<(String, u64)> = channels
        .iter()
        .filter_map(|l| l.kmc_bound.map(|k| (link_labels(l.from, l.to), k)))
        .collect();
    family(&mut out, "rumpsteak_channel_kmc_bound", "gauge", &bounded);
    if channels.iter().any(|l| !l.latency.is_empty()) {
        out.push_str("# TYPE rumpsteak_link_latency_ns summary\n");
        for link in &channels {
            summary(
                &mut out,
                "rumpsteak_link_latency_ns",
                &link_labels(link.from, link.to),
                &link.latency,
            );
        }
    }

    // Transport registry: wire counters, windows, frame latencies.
    let remote = crate::transport::snapshot();
    let trows = |f: &dyn Fn(&crate::transport::TransportSnapshot) -> u64| -> Vec<(String, u64)> {
        remote
            .iter()
            .map(|link| (link_labels(link.from, link.to), f(link)))
            .collect()
    };
    family(
        &mut out,
        "rumpsteak_transport_frames_sent_total",
        "counter",
        &trows(&|l| l.frames_sent),
    );
    family(
        &mut out,
        "rumpsteak_transport_frames_received_total",
        "counter",
        &trows(&|l| l.frames_received),
    );
    family(
        &mut out,
        "rumpsteak_transport_bytes_sent_total",
        "counter",
        &trows(&|l| l.bytes_sent),
    );
    family(
        &mut out,
        "rumpsteak_transport_bytes_received_total",
        "counter",
        &trows(&|l| l.bytes_received),
    );
    family(
        &mut out,
        "rumpsteak_transport_window_stalls_total",
        "counter",
        &trows(&|l| l.window_stalls),
    );
    family(
        &mut out,
        "rumpsteak_transport_reconnects_total",
        "counter",
        &trows(&|l| l.reconnects),
    );
    let windows: Vec<(String, u64)> = remote
        .iter()
        .filter_map(|l| l.send_window.map(|w| (link_labels(l.from, l.to), w)))
        .collect();
    family(
        &mut out,
        "rumpsteak_transport_send_window",
        "gauge",
        &windows,
    );
    if remote.iter().any(|l| !l.wire_latency.is_empty()) {
        out.push_str("# TYPE rumpsteak_wire_latency_ns summary\n");
        for link in &remote {
            summary(
                &mut out,
                "rumpsteak_wire_latency_ns",
                &link_labels(link.from, link.to),
                &link.wire_latency,
            );
        }
    }

    // Session lifetimes.
    let sessions = crate::hist::sessions_snapshot();
    if !sessions.is_empty() {
        out.push_str("# TYPE rumpsteak_session_lifetime_ns summary\n");
        for (role, lifetime) in &sessions {
            summary(
                &mut out,
                "rumpsteak_session_lifetime_ns",
                &format!("{{role=\"{}\"}}", escape_label(role)),
                lifetime,
            );
        }
    }

    // Scheduler totals over every registered runtime.
    let scheduler = crate::scheduler::sources_snapshot();
    let totals = scheduler.total();
    if totals != Default::default() {
        for (field, value) in totals.fields() {
            let _ = writeln!(out, "# TYPE rumpsteak_scheduler_{field}_total counter");
            let _ = writeln!(out, "rumpsteak_scheduler_{field}_total {value}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_over_http10() {
        crate::channel::register("ServeA", "ServeB").record_send();
        let server = start("127.0.0.1:0").expect("bind ephemeral metrics port");
        let response = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain"));
        assert!(response.contains("rumpsteak_up 1"));
        if crate::ENABLED {
            assert!(
                response.contains("rumpsteak_channel_sends_total{from=\"ServeA\",to=\"ServeB\"}"),
                "channel family missing:\n{response}"
            );
        }
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let server = start("127.0.0.1:0").unwrap();
        let response = scrape(server.local_addr(), "GET /nope HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 404"));
        let response = scrape(server.local_addr(), "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 405"));
    }

    #[test]
    fn shutdown_joins_the_thread() {
        let server = start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        drop(server);
        // The listener is gone: connecting may succeed transiently on
        // some platforms' backlog, but a fresh bind to the port must
        // work — the thread released it.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after shutdown");
    }

    #[test]
    fn exposition_summaries_render_quantiles() {
        let hist = crate::hist::Histogram::new();
        for i in 1..=1000u64 {
            hist.record(i);
        }
        let mut out = String::new();
        summary(
            &mut out,
            "test_ns",
            "{from=\"A\",to=\"B\"}",
            &hist.snapshot(),
        );
        if crate::ENABLED {
            assert!(out.contains("test_ns{from=\"A\",to=\"B\",quantile=\"0.5\"}"));
            assert!(out.contains("test_ns_count{from=\"A\",to=\"B\"} 1000"));
            assert!(out.contains("test_ns_max{from=\"A\",to=\"B\"} 1000"));
        } else {
            assert!(out.is_empty());
        }
    }
}
