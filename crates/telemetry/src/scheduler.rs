//! Per-worker scheduler counters and their snapshots.
//!
//! The executor owns one cache-padded [`Counters`] block per worker (plus
//! one "external" block for operations performed off the pool, e.g.
//! spawns from the main thread). Workers increment their own block with
//! relaxed RMWs — no sharing, no ordering, no measurable cost on the hot
//! path — and `Runtime::telemetry()` folds the blocks into a
//! [`RuntimeSnapshot`] on demand.

use std::sync::{Mutex, OnceLock};

use crate::Counter;

/// One worker's counter block. Field meanings:
///
/// * `spawns` — tasks spawned from this worker (`schedule_new`),
/// * `completions` — task futures driven to completion on this worker,
/// * `polls` — `Task::run` invocations (every poll of a scheduled task),
/// * `lifo_hits` — polls served from the LIFO wake slot (direct handoff),
/// * `local_pops` — polls served from the worker's own FIFO deque,
/// * `injector_pops` — polls served by an injector batch takeover,
/// * `sibling_steals` — polls served by stealing a sibling's deque,
/// * `spills` — deque overflow spills into the injector,
/// * `parks` / `unparks` — sleep cycles entered / wake-ups claimed.
///
/// Every poll is served from exactly one of the four queue sources, so
/// `polls == lifo_hits + local_pops + injector_pops + sibling_steals`
/// holds exactly once the pool is quiescent (the telemetry stress test
/// pins this invariant).
#[derive(Default)]
pub struct Counters {
    /// Tasks spawned from this worker.
    pub spawns: Counter,
    /// Task futures completed on this worker.
    pub completions: Counter,
    /// Scheduled-task polls executed on this worker.
    pub polls: Counter,
    /// Polls served from the LIFO wake slot.
    pub lifo_hits: Counter,
    /// Polls served from the local FIFO deque.
    pub local_pops: Counter,
    /// Polls served by an injector batch takeover.
    pub injector_pops: Counter,
    /// Polls served by stealing from a sibling worker.
    pub sibling_steals: Counter,
    /// Local-deque overflow spills into the injector.
    pub spills: Counter,
    /// Times this worker parked.
    pub parks: Counter,
    /// Wake-ups claimed for this worker by the O(1) wake protocol.
    pub unparks: Counter,
}

impl Counters {
    /// Reads the block into a plain-integer snapshot.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            spawns: self.spawns.get(),
            completions: self.completions.get(),
            polls: self.polls.get(),
            lifo_hits: self.lifo_hits.get(),
            local_pops: self.local_pops.get(),
            injector_pops: self.injector_pops.get(),
            sibling_steals: self.sibling_steals.get(),
            spills: self.spills.get(),
            parks: self.parks.get(),
            unparks: self.unparks.get(),
        }
    }
}

/// Plain-integer copy of one [`Counters`] block. Always compiled (all
/// zeros in disabled builds) so rendering code needs no `#[cfg]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// See [`Counters::spawns`].
    pub spawns: u64,
    /// See [`Counters::completions`].
    pub completions: u64,
    /// See [`Counters::polls`].
    pub polls: u64,
    /// See [`Counters::lifo_hits`].
    pub lifo_hits: u64,
    /// See [`Counters::local_pops`].
    pub local_pops: u64,
    /// See [`Counters::injector_pops`].
    pub injector_pops: u64,
    /// See [`Counters::sibling_steals`].
    pub sibling_steals: u64,
    /// See [`Counters::spills`].
    pub spills: u64,
    /// See [`Counters::parks`].
    pub parks: u64,
    /// See [`Counters::unparks`].
    pub unparks: u64,
}

impl CountersSnapshot {
    /// Polls served from any queue source; equals [`Self::polls`] once
    /// the pool is quiescent.
    pub fn pops(&self) -> u64 {
        self.lifo_hits + self.local_pops + self.injector_pops + self.sibling_steals
    }

    /// Field-wise sum.
    pub fn merge(&self, other: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            spawns: self.spawns + other.spawns,
            completions: self.completions + other.completions,
            polls: self.polls + other.polls,
            lifo_hits: self.lifo_hits + other.lifo_hits,
            local_pops: self.local_pops + other.local_pops,
            injector_pops: self.injector_pops + other.injector_pops,
            sibling_steals: self.sibling_steals + other.sibling_steals,
            spills: self.spills + other.spills,
            parks: self.parks + other.parks,
            unparks: self.unparks + other.unparks,
        }
    }

    /// `"key": value` pairs in declaration order, for JSON rendering.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("spawns", self.spawns),
            ("completions", self.completions),
            ("polls", self.polls),
            ("lifo_hits", self.lifo_hits),
            ("local_pops", self.local_pops),
            ("injector_pops", self.injector_pops),
            ("sibling_steals", self.sibling_steals),
            ("spills", self.spills),
            ("parks", self.parks),
            ("unparks", self.unparks),
        ]
    }
}

/// Aggregated scheduler telemetry for one runtime: one snapshot per
/// worker plus the external block.
#[derive(Clone, Debug, Default)]
pub struct RuntimeSnapshot {
    /// Per-worker snapshots, indexed like the worker threads.
    pub workers: Vec<CountersSnapshot>,
    /// Operations performed from threads outside the pool (spawns and
    /// wakes routed through the injector by non-workers).
    pub external: CountersSnapshot,
}

impl RuntimeSnapshot {
    /// Field-wise total over all workers and the external block.
    pub fn total(&self) -> CountersSnapshot {
        self.workers
            .iter()
            .fold(self.external, |acc, w| acc.merge(w))
    }
}

/// A live scheduler-telemetry source: a closure yielding the current
/// [`RuntimeSnapshot`] of one runtime (typically capturing a `Weak`
/// handle and returning `Default` once the runtime is gone).
pub type SnapshotSource = Box<dyn Fn() -> RuntimeSnapshot + Send + Sync>;

fn sources() -> &'static Mutex<Vec<SnapshotSource>> {
    static SOURCES: OnceLock<Mutex<Vec<SnapshotSource>>> = OnceLock::new();
    SOURCES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a runtime as a global scheduler-telemetry source so
/// pull-based consumers (the metrics endpoint) can snapshot every live
/// runtime without holding a handle to any of them.
pub fn register_source(source: impl Fn() -> RuntimeSnapshot + Send + Sync + 'static) {
    sources().lock().unwrap().push(Box::new(source));
}

/// Folds every registered source into one [`RuntimeSnapshot`]: worker
/// blocks are concatenated, external blocks merged.
pub fn sources_snapshot() -> RuntimeSnapshot {
    let sources = sources().lock().unwrap();
    let mut merged = RuntimeSnapshot::default();
    for source in sources.iter() {
        let snapshot = source();
        merged.workers.extend(snapshot.workers);
        merged.external = merged.external.merge(&snapshot.external);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_sources_fold_into_one_snapshot() {
        register_source(|| RuntimeSnapshot {
            workers: vec![CountersSnapshot {
                polls: 7,
                ..Default::default()
            }],
            external: CountersSnapshot {
                spawns: 2,
                ..Default::default()
            },
        });
        let merged = sources_snapshot();
        assert!(merged.total().polls >= 7);
        assert!(merged.total().spawns >= 2);
    }

    #[test]
    fn snapshot_reads_counters() {
        let counters = Counters::default();
        counters.spawns.add(3);
        counters.lifo_hits.incr();
        counters.local_pops.add(2);
        let snap = counters.snapshot();
        if crate::ENABLED {
            assert_eq!(snap.spawns, 3);
            assert_eq!(snap.pops(), 3);
        } else {
            assert_eq!(snap, CountersSnapshot::default());
        }
    }

    #[test]
    fn totals_merge_workers_and_external() {
        let mut snapshot = RuntimeSnapshot::default();
        snapshot.workers.push(CountersSnapshot {
            spawns: 1,
            ..Default::default()
        });
        snapshot.workers.push(CountersSnapshot {
            spawns: 2,
            parks: 5,
            ..Default::default()
        });
        snapshot.external.spawns = 4;
        let total = snapshot.total();
        assert_eq!(total.spawns, 7);
        assert_eq!(total.parks, 5);
    }
}
