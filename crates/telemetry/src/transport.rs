//! Per-link statistics for the networked transport backend.
//!
//! Remote session links are framed sockets between two *named* roles;
//! the transport layer registers each direction here as `from → to`
//! when a [`NetLink`](../../rumpsteak/net) is established, and the
//! generated `remote_mesh()` (or a hand-written topology setup)
//! registers both the socket send window the link was built with and
//! the statically verified k-MC bound that window was derived from.
//! All instances of a named link share one cell, so counters aggregate
//! across reconnects and repeated sessions.
//!
//! The cell carries the wire-efficiency counters the framed path is
//! judged by: `frames_sent`/`frames_received` against
//! `bytes_sent`/`bytes_received` (realised frame size), `window_stalls`
//! (sends that found the k-bounded window full and had to wait — the
//! verified back-pressure engaging) and `reconnects` (dial retries
//! while a peer was still binding). The registered `send_window`
//! mirrors the k-MC bound it was sized from, so tooling can assert
//! `send_window <= kmc_bound` per link; the occupancy watermark that
//! the bound promises to cap is recorded exactly by the link's
//! session-facing ring in [`channel`](crate::channel), which the
//! transport reuses unchanged.
//!
//! Hot-path updates are relaxed atomic RMWs on the shared cell; the
//! global registry mutex is touched only on registration and
//! snapshots, never per frame.

#[cfg(feature = "telemetry")]
use std::collections::HashMap;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, Mutex, OnceLock};

#[cfg(feature = "telemetry")]
use crate::hist::Histogram;
use crate::hist::HistogramSnapshot;
#[cfg(feature = "telemetry")]
use crate::Counter;

/// Shared statistics cell for one directed remote link `from → to`.
#[cfg(feature = "telemetry")]
struct TransportCell {
    from: &'static str,
    to: &'static str,
    /// Frames written to the socket.
    frames_sent: Counter,
    /// Frames decoded off the socket.
    frames_received: Counter,
    /// Payload + header bytes written.
    bytes_sent: Counter,
    /// Payload + header bytes read.
    bytes_received: Counter,
    /// Sends that found the k-bounded window full and had to wait.
    window_stalls: Counter,
    /// Dial retries before the peer accepted.
    reconnects: Counter,
    /// Link instances created under this name pair.
    instances: Counter,
    /// Socket send window the link runs with; 0 = not registered.
    send_window: AtomicU64,
    /// Statically verified k-MC bound; 0 = not registered.
    kmc_bound: AtomicU64,
    /// Frame encode→decode wire latency, measured from the sender's
    /// trace-context timestamp adjusted by the handshake clock offset.
    wire_latency: Histogram,
}

#[cfg(feature = "telemetry")]
type Registry = Mutex<HashMap<(&'static str, &'static str), Arc<TransportCell>>>;

#[cfg(feature = "telemetry")]
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

#[cfg(feature = "telemetry")]
fn cell(from: &'static str, to: &'static str) -> Arc<TransportCell> {
    registry()
        .lock()
        .expect("transport registry poisoned")
        .entry((from, to))
        .or_insert_with(|| {
            Arc::new(TransportCell {
                from,
                to,
                frames_sent: Counter::new(),
                frames_received: Counter::new(),
                bytes_sent: Counter::new(),
                bytes_received: Counter::new(),
                window_stalls: Counter::new(),
                reconnects: Counter::new(),
                instances: Counter::new(),
                send_window: AtomicU64::new(0),
                kmc_bound: AtomicU64::new(0),
                wire_latency: Histogram::new(),
            })
        })
        .clone()
}

/// Hot-path statistics handle stored inside each instrumented remote
/// link (and cloned into its writer/reader threads).
///
/// A ZST in disabled builds; [`Default`] yields an *unlabelled* handle
/// whose recorders are no-ops even with telemetry on.
#[derive(Clone, Default)]
pub struct TransportStats {
    #[cfg(feature = "telemetry")]
    cell: Option<Arc<TransportCell>>,
}

macro_rules! recorder {
    ($(#[$doc:meta])* $name:ident => |$cell:ident| $body:expr) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(&self) {
            #[cfg(feature = "telemetry")]
            if let Some($cell) = &self.cell {
                $body;
            }
        }
    };
}

impl TransportStats {
    /// Records one frame written to the socket carrying `bytes` bytes
    /// (header included).
    #[inline]
    pub fn record_frame_sent(&self, bytes: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.frames_sent.incr();
            cell.bytes_sent.add(bytes);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = bytes;
    }

    /// Records one frame decoded off the socket carrying `bytes` bytes
    /// (header included).
    #[inline]
    pub fn record_frame_received(&self, bytes: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.frames_received.incr();
            cell.bytes_received.add(bytes);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = bytes;
    }

    recorder! {
        /// Records one send that found the window full and had to wait.
        record_window_stall => |cell| cell.window_stalls.incr()
    }

    recorder! {
        /// Records one dial retry before the peer accepted.
        record_reconnect => |cell| cell.reconnects.incr()
    }

    /// Records one frame's encode→decode wire latency in nanoseconds
    /// (sender timestamp already shifted into the receiver's clock).
    #[inline]
    pub fn record_wire_latency(&self, ns: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.wire_latency.record(ns);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = ns;
    }
}

/// Registers (or re-attaches to) the directed remote link `from → to`
/// and returns its hot-path handle. No-op handle in disabled builds.
pub fn register(from: &'static str, to: &'static str) -> TransportStats {
    #[cfg(feature = "telemetry")]
    {
        let cell = cell(from, to);
        cell.instances.incr();
        TransportStats { cell: Some(cell) }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (from, to);
        TransportStats::default()
    }
}

/// Attaches to the directed remote link `from → to` *without* counting
/// a new instance: connection setup (dial retry loops, handshake
/// plumbing) records onto the same counters without inflating
/// `instances`. No-op handle in disabled builds.
pub fn attach(from: &'static str, to: &'static str) -> TransportStats {
    #[cfg(feature = "telemetry")]
    {
        TransportStats {
            cell: Some(cell(from, to)),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (from, to);
        TransportStats::default()
    }
}

/// Registers the socket send window the link `from → to` runs with.
/// Re-registration keeps the larger window (mirroring
/// [`channel::set_bound`](crate::channel::set_bound)).
pub fn set_window(from: &'static str, to: &'static str, window: u64) {
    #[cfg(feature = "telemetry")]
    {
        if window == 0 {
            return;
        }
        cell(from, to)
            .send_window
            .fetch_max(window, Ordering::Relaxed);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (from, to, window);
}

/// Registers the statically verified k-MC bound the link's window was
/// derived from. Re-registration keeps the larger bound.
pub fn set_bound(from: &'static str, to: &'static str, k: u64) {
    #[cfg(feature = "telemetry")]
    {
        if k == 0 {
            return;
        }
        cell(from, to).kmc_bound.fetch_max(k, Ordering::Relaxed);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (from, to, k);
}

/// Point-in-time statistics for one directed remote link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Sending role name.
    pub from: &'static str,
    /// Receiving role name.
    pub to: &'static str,
    /// Frames written to the socket.
    pub frames_sent: u64,
    /// Frames decoded off the socket.
    pub frames_received: u64,
    /// Bytes written (header included).
    pub bytes_sent: u64,
    /// Bytes read (header included).
    pub bytes_received: u64,
    /// Sends that found the window full and had to wait.
    pub window_stalls: u64,
    /// Dial retries before the peer accepted.
    pub reconnects: u64,
    /// Link instances created under this name pair.
    pub instances: u64,
    /// Registered socket send window, if any.
    pub send_window: Option<u64>,
    /// Registered k-MC bound, if any.
    pub kmc_bound: Option<u64>,
    /// Frame encode→decode latency distribution (empty until a traced
    /// frame arrives).
    pub wire_latency: HistogramSnapshot,
}

impl TransportSnapshot {
    /// True when the send window is registered *above* the registered
    /// k-MC bound — buffering more than k frames would exceed what the
    /// verification covers.
    pub fn window_exceeds_bound(&self) -> bool {
        matches!(
            (self.send_window, self.kmc_bound),
            (Some(window), Some(k)) if window > k
        )
    }
}

/// Snapshots every registered remote link, sorted by `(from, to)`.
/// Empty in disabled builds.
pub fn snapshot() -> Vec<TransportSnapshot> {
    #[cfg(feature = "telemetry")]
    {
        let mut links: Vec<TransportSnapshot> = registry()
            .lock()
            .expect("transport registry poisoned")
            .values()
            .map(|cell| {
                let window = cell.send_window.load(Ordering::Relaxed);
                let bound = cell.kmc_bound.load(Ordering::Relaxed);
                TransportSnapshot {
                    from: cell.from,
                    to: cell.to,
                    frames_sent: cell.frames_sent.get(),
                    frames_received: cell.frames_received.get(),
                    bytes_sent: cell.bytes_sent.get(),
                    bytes_received: cell.bytes_received.get(),
                    window_stalls: cell.window_stalls.get(),
                    reconnects: cell.reconnects.get(),
                    instances: cell.instances.get(),
                    send_window: (window > 0).then_some(window),
                    kmc_bound: (bound > 0).then_some(bound),
                    wire_latency: cell.wire_latency.snapshot(),
                }
            })
            .collect();
        links.sort_by_key(|link| (link.from, link.to));
        links
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Clears the registry (tests and trace tools isolating phases).
pub fn reset() {
    #[cfg(feature = "telemetry")]
    registry()
        .lock()
        .expect("transport registry poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_window_round_trip() {
        reset();
        let stats = register("NetA", "NetB");
        set_window("NetA", "NetB", 4);
        set_bound("NetA", "NetB", 4);
        stats.record_frame_sent(12);
        stats.record_frame_sent(20);
        stats.record_frame_received(12);
        stats.record_window_stall();
        stats.record_reconnect();
        stats.record_wire_latency(1_500);
        stats.record_wire_latency(2_500);
        let links = snapshot();
        if crate::ENABLED {
            let link = links
                .iter()
                .find(|l| l.from == "NetA" && l.to == "NetB")
                .expect("registered link in snapshot");
            assert_eq!(link.frames_sent, 2);
            assert_eq!(link.bytes_sent, 32);
            assert_eq!(link.frames_received, 1);
            assert_eq!(link.bytes_received, 12);
            assert_eq!(link.window_stalls, 1);
            assert_eq!(link.reconnects, 1);
            assert_eq!(link.send_window, Some(4));
            assert_eq!(link.kmc_bound, Some(4));
            assert!(!link.window_exceeds_bound());
            assert_eq!(link.wire_latency.count, 2);
            assert!(link.wire_latency.max >= 2_500);
        } else {
            assert!(links.is_empty());
        }
        reset();
    }

    #[test]
    fn oversized_window_is_flagged() {
        reset();
        register("WinA", "WinB");
        set_window("WinA", "WinB", 7);
        set_bound("WinA", "WinB", 2);
        if crate::ENABLED {
            let links = snapshot();
            let link = links.iter().find(|l| l.from == "WinA").unwrap();
            assert!(link.window_exceeds_bound());
        }
        reset();
    }

    #[test]
    fn instances_merge_into_one_cell() {
        reset();
        let first = register("RetryA", "RetryB");
        let second = register("RetryA", "RetryB");
        first.record_window_stall();
        second.record_window_stall();
        if crate::ENABLED {
            let links = snapshot();
            let link = links.iter().find(|l| l.from == "RetryA").unwrap();
            assert_eq!(link.instances, 2);
            assert_eq!(link.window_stalls, 2);
        }
        reset();
    }

    #[test]
    fn unlabelled_stats_are_inert() {
        let stats = TransportStats::default();
        stats.record_frame_sent(100);
        stats.record_frame_received(100);
        stats.record_window_stall();
        stats.record_reconnect();
        stats.record_wire_latency(9);
        // No panic, nothing registered.
    }
}
