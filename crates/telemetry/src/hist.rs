//! Lock-free log-linear latency histograms (HDR-style).
//!
//! The bench tables report closed-loop means; a mean cannot distinguish
//! "every message takes 1 µs" from "most take 300 ns and one in a
//! thousand takes 1 ms" — and the paper's claim (verified asynchronous
//! reordering keeps the data plane fast) lives exactly in that tail.
//! [`Histogram`] records `u64` nanosecond values into log-linear
//! buckets: values below 2^([`SUB_BITS`]+1) land in exact unit-wide
//! buckets, larger values are split per power of two into
//! 2^[`SUB_BITS`] sub-buckets, so every reported quantile is within a
//! relative error of 2^-[`SUB_BITS`] (6.25%) of the exact
//! order-statistic — the same scheme HdrHistogram uses, sized here for
//! a fixed [`BUCKETS`]-slot array of relaxed atomics.
//!
//! Recording is one `fetch_add` on the value's bucket plus relaxed
//! updates of count/sum/max: wait-free, no allocation, shareable across
//! threads without synchronisation beyond the atomics themselves.
//! Snapshots are plain-integer copies ([`HistogramSnapshot`]) that
//! [`merge`](HistogramSnapshot::merge) bucket-wise, so per-thread or
//! per-process histograms fold into one distribution exactly.
//!
//! The module also owns the **session lifetime registry**: one
//! histogram per role name recording `try_session` spawn→teardown
//! wall time, snapshotted by `fig6 --telemetry` and the metrics
//! endpoint. Without the `telemetry` feature everything compiles to
//! no-ops and empty snapshots.

#[cfg(feature = "telemetry")]
use std::collections::HashMap;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, Mutex, OnceLock};

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal buckets, bounding relative error at `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 4;

/// Values below this threshold get exact unit-wide buckets.
pub const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1);

/// Total bucket count: `LINEAR_MAX` exact buckets plus
/// `2^SUB_BITS` sub-buckets for every exponent up to 63.
pub const BUCKETS: usize =
    LINEAR_MAX as usize + (63 - SUB_BITS as usize) * (1 << SUB_BITS as usize);

/// Bucket index of `value` (total order, stable across builds).
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS + 1
    let sub = (value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    LINEAR_MAX as usize + (exp - SUB_BITS - 1) as usize * (1 << SUB_BITS as usize) + sub as usize
}

/// Largest value mapping to bucket `index` — what quantiles report, so
/// estimates never undershoot the exact order-statistic.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let group = (index - LINEAR_MAX as usize) / (1 << SUB_BITS as usize);
    let sub = ((index - LINEAR_MAX as usize) % (1 << SUB_BITS as usize)) as u64;
    let exp = group as u32 + SUB_BITS + 1;
    let width = 1u64 << (exp - SUB_BITS);
    let low = (1u64 << exp) + sub * width;
    low + (width - 1)
}

/// A lock-free log-linear histogram of `u64` values (nanoseconds, by
/// convention). A ZST-alike no-op without the `telemetry` feature.
#[derive(Default)]
pub struct Histogram {
    #[cfg(feature = "telemetry")]
    inner: OnceLock<Box<Buckets>>,
}

#[cfg(feature = "telemetry")]
struct Buckets {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    slots: [AtomicU64; BUCKETS],
}

#[cfg(feature = "telemetry")]
impl Buckets {
    fn new() -> Box<Buckets> {
        Box::new(Buckets {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }
}

impl Histogram {
    /// An empty histogram. Bucket storage is allocated lazily on the
    /// first [`record`](Self::record), so idle instruments cost a
    /// pointer.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value: a relaxed `fetch_add` on its bucket plus
    /// count/sum/max updates. Wait-free; compiles away without the
    /// feature.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "telemetry")]
        {
            let buckets = self.inner.get_or_init(Buckets::new);
            buckets.slots[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            buckets.count.fetch_add(1, Ordering::Relaxed);
            buckets.sum.fetch_add(value, Ordering::Relaxed);
            buckets.max.fetch_max(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = value;
    }

    /// Plain-integer copy of the current state. Empty (count 0) without
    /// the feature or before the first record.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "telemetry")]
        {
            let Some(buckets) = self.inner.get() else {
                return HistogramSnapshot::default();
            };
            HistogramSnapshot {
                count: buckets.count.load(Ordering::Relaxed),
                sum: buckets.sum.load(Ordering::Relaxed),
                max: buckets.max.load(Ordering::Relaxed),
                buckets: buckets
                    .slots
                    .iter()
                    .map(|slot| slot.load(Ordering::Relaxed))
                    .collect(),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        HistogramSnapshot::default()
    }
}

/// Point-in-time copy of a [`Histogram`]; merges exactly and reports
/// quantiles against the bucket upper bounds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of all recorded values (mean = `sum / count`).
    pub sum: u64,
    /// Largest recorded value, exact.
    pub max: u64,
    /// Per-bucket counts; empty when nothing was recorded.
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest value, clamped
    /// to the exact [`max`](Self::max). Returns 0 when empty. Relative
    /// error against the exact order-statistic is at most
    /// `2^-`[`SUB_BITS`] (values below [`LINEAR_MAX`] are exact).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Bucket-wise sum: the exact distribution of the union of the two
    /// recorded populations (histograms from different threads or
    /// processes fold losslessly).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = if self.buckets.len() >= other.buckets.len() {
            self.buckets.clone()
        } else {
            other.buckets.clone()
        };
        let shorter = if self.buckets.len() >= other.buckets.len() {
            &other.buckets
        } else {
            &self.buckets
        };
        for (slot, &n) in buckets.iter_mut().zip(shorter.iter()) {
            *slot += n;
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            buckets,
        }
    }
}

// ---- session lifetime registry --------------------------------------

#[cfg(feature = "telemetry")]
type SessionRegistry = Mutex<HashMap<&'static str, Arc<Histogram>>>;

#[cfg(feature = "telemetry")]
fn session_registry() -> &'static SessionRegistry {
    static REGISTRY: OnceLock<SessionRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Records one completed session's spawn→teardown lifetime for `role`.
/// Called by `try_session` on successful completion; teardown is not a
/// hot path, so the registry lookup per session is acceptable.
pub fn record_session(role: &'static str, lifetime_ns: u64) {
    #[cfg(feature = "telemetry")]
    {
        let hist = session_registry()
            .lock()
            .expect("session registry poisoned")
            .entry(role)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone();
        hist.record(lifetime_ns);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (role, lifetime_ns);
}

/// Lifetime distribution of every role that completed at least one
/// session, sorted by role name. Empty in disabled builds.
pub fn sessions_snapshot() -> Vec<(&'static str, HistogramSnapshot)> {
    #[cfg(feature = "telemetry")]
    {
        let mut sessions: Vec<(&'static str, HistogramSnapshot)> = session_registry()
            .lock()
            .expect("session registry poisoned")
            .iter()
            .map(|(role, hist)| (*role, hist.snapshot()))
            .collect();
        sessions.sort_by_key(|(role, _)| *role);
        sessions
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Clears the session registry (tests isolating phases).
pub fn reset_sessions() {
    #[cfg(feature = "telemetry")]
    session_registry()
        .lock()
        .expect("session registry poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_bounded() {
        let mut values: Vec<u64> = (0..4096u64).collect();
        values.extend((12..64).flat_map(|e| [(1u64 << e) - 1, 1u64 << e]));
        values.push(u64::MAX);
        values.sort_unstable();
        let mut last = 0usize;
        for value in values {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "value {value} -> index {index}");
            assert!(index >= last, "non-monotonic at {value}");
            last = index;
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        // Every probed value must satisfy
        // `value <= upper_bound(bucket_index(value))` with relative
        // error at most 2^-SUB_BITS — the histogram's accuracy
        // contract, checked across bucket edges.
        let probes: Vec<u64> = (0..LINEAR_MAX)
            .chain((SUB_BITS + 1..63).flat_map(|e| {
                let base = 1u64 << e;
                [base - 1, base, base + 1, base + base / 2, (base << 1) - 1]
            }))
            .collect();
        for &value in &probes {
            let upper = bucket_upper_bound(bucket_index(value));
            assert!(upper >= value, "upper {upper} < value {value}");
            let slack = upper - value;
            assert!(
                (slack as f64) <= (value as f64) / (1 << SUB_BITS) as f64 + 1.0,
                "value {value}: bucket upper {upper} overshoots the \
                 2^-{SUB_BITS} relative error bound"
            );
        }
    }

    #[test]
    fn quantiles_match_sorted_reference_within_bucket_error() {
        // A deliberately skewed population crossing many bucket edges:
        // exact linear values, mid-range, and a heavy tail.
        let mut values: Vec<u64> = Vec::new();
        for i in 0..1000u64 {
            values.push(i % 30); // linear range, exact buckets
        }
        for i in 0..500u64 {
            values.push(1_000 + 37 * i); // log-linear mid-range
        }
        for i in 0..25u64 {
            values.push(1_000_000 + 77_777 * i); // tail
        }
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        if !crate::ENABLED {
            assert!(snap.is_empty());
            return;
        }
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        values.sort_unstable();
        assert_eq!(snap.max, *values.last().unwrap());
        for &q in &[0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let estimate = snap.quantile(q);
            assert!(
                estimate >= exact,
                "q={q}: estimate {estimate} undershoots exact {exact}"
            );
            assert!(
                (estimate - exact) as f64 <= exact as f64 / (1 << SUB_BITS) as f64 + 1.0,
                "q={q}: estimate {estimate} beyond error bound of exact {exact}"
            );
        }
        assert_eq!(snap.quantile(1.0), snap.max);
        // The convenience accessors are the same estimator.
        assert_eq!(snap.p50(), snap.quantile(0.5));
        assert_eq!(snap.p999(), snap.quantile(0.999));
    }

    #[test]
    fn quantiles_are_monotonic() {
        let hist = Histogram::new();
        for i in 0..10_000u64 {
            hist.record(i * i % 65_536);
        }
        let snap = hist.snapshot();
        if crate::ENABLED {
            let qs = [snap.p50(), snap.p90(), snap.p99(), snap.p999(), snap.max];
            for pair in qs.windows(2) {
                assert!(pair[0] <= pair[1], "quantiles not monotonic: {qs:?}");
            }
        }
    }

    #[test]
    fn merge_is_exact_bucketwise_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 0..300u64 {
            a.record(i * 3);
            both.record(i * 3);
        }
        for i in 0..200u64 {
            b.record(100_000 + i * 11);
            both.record(100_000 + i * 11);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        if crate::ENABLED {
            assert_eq!(merged.count, 500);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let hist = Histogram::new();
        hist.record(42);
        hist.record(4200);
        let snap = hist.snapshot();
        assert_eq!(snap.merge(&HistogramSnapshot::default()), snap);
        assert_eq!(HistogramSnapshot::default().merge(&snap), snap);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        if !crate::ENABLED {
            return;
        }
        let hist = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(hist.snapshot().count, 40_000);
    }

    #[test]
    fn session_registry_round_trips() {
        reset_sessions();
        record_session("HistRoleA", 1_000);
        record_session("HistRoleA", 3_000);
        record_session("HistRoleB", 2_000);
        let sessions = sessions_snapshot();
        if crate::ENABLED {
            assert_eq!(sessions.len(), 2);
            let (role, lifetime) = &sessions[0];
            assert_eq!(*role, "HistRoleA");
            assert_eq!(lifetime.count, 2);
            assert_eq!(lifetime.max, 3_000);
        } else {
            assert!(sessions.is_empty());
        }
        reset_sessions();
    }

    #[test]
    fn disabled_or_idle_histogram_is_empty() {
        let hist = Histogram::new();
        let snap = hist.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), 0);
    }
}
