//! Lock-free, feature-gated observability for the Rumpsteak runtime.
//!
//! The paper's pitch is that statically verified asynchronous message
//! reordering makes session-typed Rust *fast*; this crate makes the
//! runtime explain *why* a number moved instead of reporting only
//! end-to-end means. Three instruments, all lock-free on their hot
//! paths:
//!
//! * [`scheduler`] — per-worker cache-padded relaxed [`Counter`]s for the
//!   executor (spawns, local pops, LIFO-wake hits, sibling steals,
//!   injector batch takeovers, deque spills, park/unpark cycles),
//!   aggregated on demand into a [`scheduler::RuntimeSnapshot`].
//! * [`channel`] — per-link statistics for the SPSC session rings
//!   (occupancy high-watermark, grow events, waker-handoff CAS retries)
//!   plus a registry of each link's statically verified k-MC bound, so a
//!   snapshot can check `observed_depth <= k` per channel — the paper's
//!   static guarantee turned into a runtime-checkable invariant.
//! * [`transport`] — per-link statistics for the networked transport
//!   backend (frames/bytes in each direction, window stalls under the
//!   statically derived socket send window, dial reconnects), plus a
//!   registry of each remote link's send window and the k-MC bound it
//!   was sized from.
//! * [`trace`] — per-thread bounded lock-free event rings recording
//!   `(role, peer, label, t_ns, seq)` for every session Send/Receive/
//!   Select/Branch and every wire frame, drop-oldest with a drop
//!   counter, dumpable as Chrome trace-event JSON (`chrome://tracing` /
//!   Perfetto) — and, per process, as a text dump that
//!   [`trace::merge_chrome_trace`] stitches across processes with flow
//!   events connecting each frame send to its receive.
//! * [`hist`] — lock-free log-linear (HDR-style) latency histograms
//!   with exact-reference-tested quantiles, recording per-link
//!   send→recv latency (via [`channel`]/[`transport`]) and session
//!   spawn→teardown lifetimes.
//! * [`serve`] — a dependency-free HTTP/1.0 metrics endpoint exposing
//!   every registry above in Prometheus-style text exposition,
//!   scrapeable mid-run.
//!
//! # Feature gating
//!
//! Without the `telemetry` cargo feature every type here still exists but
//! is a zero-sized no-op: [`Counter::incr`] is an empty inline function,
//! [`channel::LinkStats`] is a ZST, [`trace::event`] compiles away.
//! Instrumented call sites therefore never need `#[cfg]`; they test
//! [`ENABLED`] only where avoiding an argument computation matters.

pub mod channel;
pub mod hist;
pub mod scheduler;
pub mod serve;
pub mod trace;
pub mod transport;

mod counter;

pub use counter::{CachePadded, Counter};

/// True when the crate was built with the `telemetry` feature; instrument
/// call sites branch on this `const` so disabled builds fold the whole
/// path away.
pub const ENABLED: bool = cfg!(feature = "telemetry");

/// Strips module path and generic arguments from a `std::any::type_name`
/// result: `bench::protocols::streaming::Ready` becomes `Ready`.
///
/// Session futures record roles/peers/labels via `type_name`, which needs
/// no extra trait bounds; rendering uses this to keep traces readable.
pub fn short_type_name(full: &'static str) -> &'static str {
    let head = match full.find('<') {
        Some(index) => &full[..index],
        None => full,
    };
    match head.rfind("::") {
        Some(index) => &head[index + 2..],
        None => head,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_type_name_strips_path_and_generics() {
        assert_eq!(short_type_name("a::b::Ready"), "Ready");
        assert_eq!(short_type_name("Ready"), "Ready");
        assert_eq!(short_type_name("a::b::Foo<c::d::Bar>"), "Foo");
    }

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(ENABLED, cfg!(feature = "telemetry"));
    }
}
