//! Session event tracing: per-thread lock-free bounded rings.
//!
//! Every session `Send`/`Receive`/`Select`/`Branch` future calls
//! [`event`] when it completes. Events land in a ring owned by the
//! *calling thread* (single writer, no contention, no locks on the hot
//! path); rings are bounded and **drop-oldest** — a slow consumer can
//! never stall the workload, and the number of overwritten events is
//! reported per thread so a truncated trace is never mistaken for a
//! complete one.
//!
//! Each slot is a group of `AtomicU64` words guarded by a per-slot
//! seqlock sequence word, so a drain racing a writer reads only atomic
//! words (no data-race UB) and discards any slot whose sequence moved
//! mid-read. Role/peer/label strings are `&'static str` (they come from
//! `std::any::type_name` or string literals); the ring stores their
//! pointer and length as integers and reconstructs the `&'static str`
//! only after the seqlock validates that both words came from the same
//! write.
//!
//! [`drain`] collects all rings into [`ThreadTrace`]s and
//! [`chrome_trace_json`] renders them in the Chrome trace-event format
//! accepted by `chrome://tracing` and Perfetto.
//!
//! # Cross-process stitching
//!
//! Traces die at the process boundary unless the wire carries causality
//! with them: the transport records a [`Kind::FrameSend`] /
//! [`Kind::FrameRecv`] pair (keyed by the frame's per-edge sequence
//! number) on the two sides of every socket, and the accept handshake
//! estimates each peer's clock offset ([`set_peer_offset`]). A process
//! writes everything as a line-oriented text dump ([`dump_text`]);
//! `rumpsteak-trace --merge` parses the dumps ([`parse_dump`]) and
//! [`merge_chrome_trace`] aligns their clocks and emits one timeline
//! with Chrome *flow events* connecting each send to its receive.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, Mutex, OnceLock};

/// Session events per thread ring; the oldest events are overwritten
/// once a thread exceeds this many undrained events.
pub const RING_CAPACITY: usize = 8192;

/// The session and transport operations that emit trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A message was enqueued (`Send` resolved).
    Send,
    /// A message was dequeued (`Receive` resolved).
    Receive,
    /// An internal choice was made and its label sent (`Select`).
    Select,
    /// An external choice was received (`Branch` resolved).
    Branch,
    /// A wire frame was written to the socket (writer thread).
    FrameSend,
    /// A wire frame was decoded off the socket (reader thread).
    FrameRecv,
}

impl Kind {
    /// Stable lowercase name, used as the Chrome trace event category.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kind::Send => "send",
            Kind::Receive => "receive",
            Kind::Select => "select",
            Kind::Branch => "branch",
            Kind::FrameSend => "frame_send",
            Kind::FrameRecv => "frame_recv",
        }
    }

    /// Inverse of [`as_str`](Self::as_str) (dump parsing).
    pub fn parse(name: &str) -> Option<Kind> {
        Some(match name {
            "send" => Kind::Send,
            "receive" => Kind::Receive,
            "select" => Kind::Select,
            "branch" => Kind::Branch,
            "frame_send" => Kind::FrameSend,
            "frame_recv" => Kind::FrameRecv,
            _ => return None,
        })
    }

    #[cfg(feature = "telemetry")]
    fn from_u8(byte: u8) -> Kind {
        match byte {
            0 => Kind::Send,
            1 => Kind::Receive,
            2 => Kind::Select,
            4 => Kind::FrameSend,
            5 => Kind::FrameRecv,
            _ => Kind::Branch,
        }
    }

    #[cfg(feature = "telemetry")]
    fn as_u8(self) -> u8 {
        match self {
            Kind::Send => 0,
            Kind::Receive => 1,
            Kind::Select => 2,
            Kind::Branch => 3,
            Kind::FrameSend => 4,
            Kind::FrameRecv => 5,
        }
    }
}

/// One recorded session event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch (first event or first
    /// call to [`now_ns`], whichever came first).
    pub t_ns: u64,
    /// Operation kind.
    pub kind: Kind,
    /// Role executing the operation.
    pub role: &'static str,
    /// Peer role on the other end of the link.
    pub peer: &'static str,
    /// Message or choice label.
    pub label: &'static str,
    /// Per-edge frame sequence number for [`Kind::FrameSend`] /
    /// [`Kind::FrameRecv`] (the cross-process matching key); 0 for
    /// session-level events.
    pub seq: u64,
}

/// All events drained from one thread's ring, oldest first.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// Thread name, or `thread-<n>` for unnamed threads.
    pub thread: String,
    /// Surviving events in timestamp order for this thread.
    pub events: Vec<TraceEvent>,
    /// Events overwritten (ring full) or torn (overwritten mid-drain)
    /// and therefore missing from `events`.
    pub dropped: u64,
}

/// Nanoseconds since the process trace epoch. The epoch is pinned the
/// first time any thread records or asks for a timestamp, so all rings
/// share one clock. Always available (even without the feature) so
/// callers can stamp their own phase markers consistently.
pub fn now_ns() -> u64 {
    static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// Records one session event into the calling thread's ring. Compiles
/// to nothing without the `telemetry` feature.
#[inline]
pub fn event(kind: Kind, role: &'static str, peer: &'static str, label: &'static str) {
    event_seq(kind, role, peer, label, 0);
}

/// [`event`] carrying a per-edge sequence number — the transport's
/// frame events use the sequence as the cross-process matching key.
#[inline]
pub fn event_seq(
    kind: Kind,
    role: &'static str,
    peer: &'static str,
    label: &'static str,
    seq: u64,
) {
    #[cfg(feature = "telemetry")]
    enabled::event(kind, role, peer, label, seq);
    #[cfg(not(feature = "telemetry"))]
    let _ = (kind, role, peer, label, seq);
}

/// Registers the estimated clock offset of `peer`'s trace epoch
/// relative to this process (`peer_clock - local_clock`, nanoseconds),
/// as measured by the transport's accept handshake. Dumped with the
/// process trace so [`merge_chrome_trace`] can align timelines.
pub fn set_peer_offset(peer: &str, offset_ns: i64) {
    #[cfg(feature = "telemetry")]
    {
        let mut offsets = peer_offset_table().lock().expect("offset table poisoned");
        match offsets.iter_mut().find(|(name, _)| name == peer) {
            Some((_, off)) => *off = offset_ns,
            None => offsets.push((peer.to_owned(), offset_ns)),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (peer, offset_ns);
}

/// The registered per-peer clock offsets. Empty in disabled builds.
pub fn peer_offsets() -> Vec<(String, i64)> {
    #[cfg(feature = "telemetry")]
    return peer_offset_table()
        .lock()
        .expect("offset table poisoned")
        .clone();
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

#[cfg(feature = "telemetry")]
fn peer_offset_table() -> &'static Mutex<Vec<(String, i64)>> {
    static TABLE: OnceLock<Mutex<Vec<(String, i64)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains every thread ring into per-thread traces (oldest first),
/// advancing each ring's read cursor. Empty in disabled builds.
pub fn drain() -> Vec<ThreadTrace> {
    #[cfg(feature = "telemetry")]
    return enabled::drain();
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Renders drained traces as a Chrome trace-event JSON document
/// (instant events, one `tid` per thread), loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(traces: &[ThreadTrace]) -> String {
    let mut out =
        String::with_capacity(256 + traces.iter().map(|t| t.events.len()).sum::<usize>() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (tid, trace) in traces.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        // Thread name metadata record.
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"args\":{\"name\":");
        push_json_string(&mut out, &trace.thread);
        out.push_str("}}");
        for event in &trace.events {
            out.push_str(",{\"name\":");
            let name = format!(
                "{} {} {}",
                event.role,
                match event.kind {
                    Kind::Send | Kind::Select | Kind::FrameSend => "->",
                    Kind::Receive | Kind::Branch | Kind::FrameRecv => "<-",
                },
                event.peer
            );
            push_json_string(&mut out, &name);
            out.push_str(",\"cat\":\"");
            out.push_str(event.kind.as_str());
            out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"ts\":");
            // Chrome expects microseconds; keep nanosecond precision as a
            // fraction.
            out.push_str(&format!("{:.3}", event.t_ns as f64 / 1000.0));
            out.push_str(",\"args\":{\"label\":");
            push_json_string(&mut out, event.label);
            out.push_str(",\"peer\":");
            push_json_string(&mut out, event.peer);
            out.push_str(",\"seq\":");
            out.push_str(&event.seq.to_string());
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

// ---- per-process dumps and cross-process merging --------------------

/// One process's complete trace state: its per-thread event rings plus
/// the clock offsets its transport handshakes measured for each peer.
#[derive(Clone, Debug)]
pub struct ProcessDump {
    /// Process identity — the role name for generated distributed
    /// skeletons (one role per process).
    pub process: String,
    /// `(peer, peer_clock - local_clock)` nanosecond offsets.
    pub peer_offsets: Vec<(String, i64)>,
    /// Drained per-thread traces.
    pub traces: Vec<ThreadTrace>,
}

/// Drains this process's rings and renders them (with the registered
/// peer offsets) as the line-oriented text dump `rumpsteak-trace
/// --merge` consumes. Safe to call in disabled builds (header only).
pub fn dump_text(process: &str) -> String {
    render_dump(&ProcessDump {
        process: process.to_owned(),
        peer_offsets: peer_offsets(),
        traces: drain(),
    })
}

/// Renders a [`ProcessDump`] in the text dump format: tab-separated
/// `process` / `offset` / `thread` / `dropped` / `event` records under
/// a versioned header. Event fields are `t_ns kind seq role peer
/// label`; role, peer and label come from type names and never contain
/// tabs or newlines.
pub fn render_dump(dump: &ProcessDump) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("rumpsteak-trace-dump v1\n");
    let _ = writeln!(out, "process\t{}", dump.process);
    for (peer, offset) in &dump.peer_offsets {
        let _ = writeln!(out, "offset\t{peer}\t{offset}");
    }
    for trace in &dump.traces {
        let _ = writeln!(out, "thread\t{}", trace.thread);
        if trace.dropped > 0 {
            let _ = writeln!(out, "dropped\t{}", trace.dropped);
        }
        for event in &trace.events {
            let _ = writeln!(
                out,
                "event\t{}\t{}\t{}\t{}\t{}\t{}",
                event.t_ns,
                event.kind.as_str(),
                event.seq,
                event.role,
                event.peer,
                event.label,
            );
        }
    }
    out
}

/// Parses a text dump produced by [`dump_text`] / [`render_dump`].
///
/// Role/peer/label strings are interned by leaking (the merge tool is a
/// short-lived offline process; leaked bytes are bounded by dump size),
/// which keeps [`TraceEvent`]'s `&'static str` shape identical for live
/// and parsed events.
pub fn parse_dump(text: &str) -> Result<ProcessDump, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "rumpsteak-trace-dump v1")) => {}
        other => {
            return Err(format!(
                "not a rumpsteak trace dump (header line: {:?})",
                other.map(|(_, line)| line)
            ))
        }
    }
    let intern = |s: &str| -> &'static str { Box::leak(s.to_owned().into_boxed_str()) };
    let mut process = String::new();
    let mut peer_offsets = Vec::new();
    let mut traces: Vec<ThreadTrace> = Vec::new();
    for (lineno, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let tag = fields.next().unwrap_or("");
        let context = |what: &str| format!("dump line {}: {what}", lineno + 1);
        match tag {
            "process" => {
                process = fields
                    .next()
                    .ok_or_else(|| context("missing name"))?
                    .to_owned();
            }
            "offset" => {
                let peer = fields.next().ok_or_else(|| context("missing peer"))?;
                let offset: i64 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| context("bad offset"))?;
                peer_offsets.push((peer.to_owned(), offset));
            }
            "thread" => {
                traces.push(ThreadTrace {
                    thread: fields.next().unwrap_or("").to_owned(),
                    events: Vec::new(),
                    dropped: 0,
                });
            }
            "dropped" => {
                let dropped: u64 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| context("bad dropped count"))?;
                traces
                    .last_mut()
                    .ok_or_else(|| context("dropped before thread"))?
                    .dropped = dropped;
            }
            "event" => {
                let t_ns: u64 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| context("bad timestamp"))?;
                let kind = fields
                    .next()
                    .and_then(Kind::parse)
                    .ok_or_else(|| context("bad kind"))?;
                let seq: u64 = fields
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| context("bad seq"))?;
                let role = fields.next().ok_or_else(|| context("missing role"))?;
                let peer = fields.next().ok_or_else(|| context("missing peer"))?;
                let label = fields.next().ok_or_else(|| context("missing label"))?;
                traces
                    .last_mut()
                    .ok_or_else(|| context("event before thread"))?
                    .events
                    .push(TraceEvent {
                        t_ns,
                        kind,
                        role: intern(role),
                        peer: intern(peer),
                        label: intern(label),
                        seq,
                    });
            }
            other => return Err(context(&format!("unknown record `{other}`"))),
        }
    }
    if process.is_empty() {
        return Err("dump has no process record".to_owned());
    }
    Ok(ProcessDump {
        process,
        peer_offsets,
        traces,
    })
}

/// Per-edge frame-flow accounting from a merge: how many frame sends
/// and receives each directed edge contributed, and how many were
/// matched into flow events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeFlows {
    /// Sending role.
    pub from: String,
    /// Receiving role.
    pub to: String,
    /// `frame_send` events seen for the edge.
    pub sends: u64,
    /// `frame_recv` events seen for the edge.
    pub recvs: u64,
    /// Send/receive pairs matched into flow events.
    pub matched: u64,
}

/// Summary returned beside the merged timeline JSON.
#[derive(Clone, Debug, Default)]
pub struct MergeReport {
    /// Flow events emitted (matched send→recv pairs).
    pub flows: u64,
    /// Per directed edge accounting, sorted by `(from, to)`.
    pub edges: Vec<EdgeFlows>,
}

/// Stitches per-process dumps into one Chrome trace-event timeline.
///
/// The first dump is the reference clock; every other dump's
/// timestamps are shifted by the handshake-measured offset (looked up
/// in the reference's table, or the negated inverse in the dump's
/// own). Each process becomes a `pid` lane with its threads as `tid`s;
/// every `frame_send` is connected to the `frame_recv` with the same
/// `(from, to, seq)` key by a Chrome flow event (`ph:"s"` → `ph:"f"`),
/// which Perfetto draws as an arrow across the process lanes.
pub fn merge_chrome_trace(dumps: &[ProcessDump]) -> (String, MergeReport) {
    use std::collections::BTreeMap;

    // Clock shift per dump, into the reference (first) dump's epoch.
    let shifts: Vec<i64> = dumps
        .iter()
        .enumerate()
        .map(|(index, dump)| {
            if index == 0 {
                return 0;
            }
            if let Some((_, offset)) = dumps[0]
                .peer_offsets
                .iter()
                .find(|(peer, _)| *peer == dump.process)
            {
                // offset = dump_clock - ref_clock.
                return -offset;
            }
            if let Some((_, offset)) = dump
                .peer_offsets
                .iter()
                .find(|(peer, _)| *peer == dumps[0].process)
            {
                // offset = ref_clock - dump_clock.
                return *offset;
            }
            0
        })
        .collect();

    // Flatten with shifted timestamps; normalise so the earliest event
    // sits at t = 0 (Chrome dislikes negative timestamps).
    struct Placed {
        pid: usize,
        tid: usize,
        ts_ns: i64,
        event: TraceEvent,
    }
    let mut placed: Vec<Placed> = Vec::new();
    for (index, dump) in dumps.iter().enumerate() {
        for (tid, trace) in dump.traces.iter().enumerate() {
            for event in &trace.events {
                placed.push(Placed {
                    pid: index + 1,
                    tid,
                    ts_ns: event.t_ns as i64 + shifts[index],
                    event: *event,
                });
            }
        }
    }
    let base = placed.iter().map(|p| p.ts_ns).min().unwrap_or(0);
    for p in &mut placed {
        p.ts_ns -= base;
    }

    // Frame flow matching on (from, to, seq), in timestamp order per key.
    type FlowKey = (&'static str, &'static str, u64);
    let mut sends: BTreeMap<FlowKey, Vec<usize>> = BTreeMap::new();
    let mut recvs: BTreeMap<FlowKey, Vec<usize>> = BTreeMap::new();
    for (index, p) in placed.iter().enumerate() {
        if p.event.seq == 0 {
            continue;
        }
        let key = (p.event.role, p.event.peer, p.event.seq);
        match p.event.kind {
            Kind::FrameSend => sends.entry(key).or_default().push(index),
            Kind::FrameRecv => recvs.entry(key).or_default().push(index),
            _ => {}
        }
    }

    type EdgeMap = BTreeMap<(&'static str, &'static str), EdgeFlows>;
    fn edge_entry<'a>(
        edges: &'a mut EdgeMap,
        from: &'static str,
        to: &'static str,
    ) -> &'a mut EdgeFlows {
        edges.entry((from, to)).or_insert_with(move || EdgeFlows {
            from: from.to_owned(),
            to: to.to_owned(),
            sends: 0,
            recvs: 0,
            matched: 0,
        })
    }
    let mut edges: EdgeMap = BTreeMap::new();
    for (&(from, to, _), list) in &sends {
        edge_entry(&mut edges, from, to).sends += list.len() as u64;
    }
    for (&(from, to, _), list) in &recvs {
        edge_entry(&mut edges, from, to).recvs += list.len() as u64;
    }
    let mut flows: Vec<(usize, usize)> = Vec::new();
    for (key, send_list) in &sends {
        if let Some(recv_list) = recvs.get(key) {
            let matched = send_list.len().min(recv_list.len());
            edges
                .get_mut(&(key.0, key.1))
                .expect("edge registered")
                .matched += matched as u64;
            flows.extend(
                send_list
                    .iter()
                    .copied()
                    .zip(recv_list.iter().copied())
                    .take(matched),
            );
        }
    }

    // Render the merged document.
    let ts_us = |ns: i64| format!("{:.3}", ns as f64 / 1000.0);
    let mut out = String::with_capacity(4096 + placed.len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool, record: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&record);
    };
    for (index, dump) in dumps.iter().enumerate() {
        let pid = index + 1;
        let mut name = String::new();
        push_json_string(&mut name, &dump.process);
        emit(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{name}}}}}"
            ),
        );
        for (tid, trace) in dump.traces.iter().enumerate() {
            let mut thread = String::new();
            push_json_string(&mut thread, &trace.thread);
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{thread}}}}}"
                ),
            );
        }
    }
    for p in &placed {
        let mut name = String::new();
        let arrow = match p.event.kind {
            Kind::Send | Kind::Select | Kind::FrameSend => "->",
            Kind::Receive | Kind::Branch | Kind::FrameRecv => "<-",
        };
        push_json_string(
            &mut name,
            &format!("{} {} {}", p.event.role, arrow, p.event.peer),
        );
        let mut label = String::new();
        push_json_string(&mut label, p.event.label);
        emit(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":{name},\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{\"label\":{label},\"seq\":{}}}}}",
                p.event.kind.as_str(),
                p.pid,
                p.tid,
                ts_us(p.ts_ns),
                p.event.seq,
            ),
        );
    }
    for (flow_id, &(send_index, recv_index)) in flows.iter().enumerate() {
        let send = &placed[send_index];
        let recv = &placed[recv_index];
        let mut name = String::new();
        push_json_string(
            &mut name,
            &format!("{} => {}", send.event.role, send.event.peer),
        );
        emit(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":{name},\"cat\":\"frame-flow\",\"ph\":\"s\",\"id\":{flow_id},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                send.pid,
                send.tid,
                ts_us(send.ts_ns),
            ),
        );
        // Offset-estimation error can place the receive marginally
        // before the send; clamp so the arrow always points forward.
        let recv_ts = recv.ts_ns.max(send.ts_ns);
        emit(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":{name},\"cat\":\"frame-flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow_id},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                recv.pid,
                recv.tid,
                ts_us(recv_ts),
            ),
        );
    }
    out.push_str("]}");

    let report = MergeReport {
        flows: flows.len() as u64,
        edges: edges.into_values().collect(),
    };
    (out, report)
}

fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
}

#[cfg(feature = "telemetry")]
mod enabled {
    use super::*;

    /// One event slot: six atomic words validated by a per-slot seqlock.
    ///
    /// `seq` is odd while the writer is mid-update and even when stable;
    /// the write of global index `i` leaves `seq == 2 * (i / CAPACITY + 1)`,
    /// so a drain can tell whether the slot still holds the event it is
    /// looking for or has been lapped.
    struct Slot {
        seq: AtomicU64,
        t_ns: AtomicU64,
        role_ptr: AtomicU64,
        peer_ptr: AtomicU64,
        label_ptr: AtomicU64,
        /// `role_len | peer_len << 16 | label_len << 32 | kind << 48`.
        lens_kind: AtomicU64,
        /// Per-edge frame sequence (0 for session events).
        msg_seq: AtomicU64,
    }

    impl Slot {
        fn new() -> Slot {
            Slot {
                seq: AtomicU64::new(0),
                t_ns: AtomicU64::new(0),
                role_ptr: AtomicU64::new(0),
                peer_ptr: AtomicU64::new(0),
                label_ptr: AtomicU64::new(0),
                lens_kind: AtomicU64::new(0),
                msg_seq: AtomicU64::new(0),
            }
        }
    }

    struct Ring {
        thread: String,
        /// Next global write index (monotonic; slot = index % capacity).
        tail: AtomicU64,
        /// Next global index to hand out on drain.
        drained: AtomicU64,
        slots: Box<[Slot]>,
    }

    // The ring only ever stores pointers to `&'static str` data and
    // integers; it is safe to share across threads (all access is via
    // atomics).
    unsafe impl Send for Ring {}
    unsafe impl Sync for Ring {}

    fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    }

    fn ring_for_current_thread() -> Arc<Ring> {
        RING.with(|cell| {
            cell.get_or_init(|| {
                let mut rings = registry().lock().expect("trace registry poisoned");
                let thread = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("thread-{}", rings.len()));
                let ring = Arc::new(Ring {
                    thread,
                    tail: AtomicU64::new(0),
                    drained: AtomicU64::new(0),
                    slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
                });
                rings.push(ring.clone());
                ring
            })
            .clone()
        })
    }

    pub(super) fn event(
        kind: Kind,
        role: &'static str,
        peer: &'static str,
        label: &'static str,
        msg_seq: u64,
    ) {
        let t_ns = now_ns();
        let ring = ring_for_current_thread();
        let index = ring.tail.load(Ordering::Relaxed);
        let slot = &ring.slots[(index % RING_CAPACITY as u64) as usize];

        // Seqlock write: mark the slot unstable *before* touching its
        // data words so a concurrent drain can never validate a torn
        // read. The release fence keeps the odd store ahead of the data
        // stores; the final release store publishes them.
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.role_ptr.store(role.as_ptr() as u64, Ordering::Relaxed);
        slot.peer_ptr.store(peer.as_ptr() as u64, Ordering::Relaxed);
        slot.label_ptr
            .store(label.as_ptr() as u64, Ordering::Relaxed);
        let lens_kind = role.len() as u64
            | (peer.len() as u64) << 16
            | (label.len() as u64) << 32
            | (kind.as_u8() as u64) << 48;
        slot.lens_kind.store(lens_kind, Ordering::Relaxed);
        slot.msg_seq.store(msg_seq, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);

        // Publishing the new tail last means drains only look at slots
        // that have completed at least one write.
        ring.tail.store(index + 1, Ordering::Release);
    }

    /// Reconstructs a `&'static str` from a validated (ptr, len) pair.
    ///
    /// # Safety
    /// Both words must come from the same seqlock-validated slot write,
    /// in which case they are exactly the pieces of a live `&'static str`
    /// the writer held.
    unsafe fn rebuild_str(ptr: u64, len: usize) -> &'static str {
        std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len))
    }

    fn read_slot(slot: &Slot, expected_seq: u64) -> Option<TraceEvent> {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != expected_seq {
            // Mid-write (odd) or already lapped by a newer event.
            return None;
        }
        let t_ns = slot.t_ns.load(Ordering::Relaxed);
        let role_ptr = slot.role_ptr.load(Ordering::Relaxed);
        let peer_ptr = slot.peer_ptr.load(Ordering::Relaxed);
        let label_ptr = slot.label_ptr.load(Ordering::Relaxed);
        let lens_kind = slot.lens_kind.load(Ordering::Relaxed);
        let msg_seq = slot.msg_seq.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != expected_seq {
            return None;
        }
        let role_len = (lens_kind & 0xffff) as usize;
        let peer_len = (lens_kind >> 16 & 0xffff) as usize;
        let label_len = (lens_kind >> 32 & 0xffff) as usize;
        let kind = Kind::from_u8((lens_kind >> 48) as u8);
        // SAFETY: the seqlock round-trip above proves every word read
        // belongs to one completed write of this slot.
        let (role, peer, label) = unsafe {
            (
                rebuild_str(role_ptr, role_len),
                rebuild_str(peer_ptr, peer_len),
                rebuild_str(label_ptr, label_len),
            )
        };
        Some(TraceEvent {
            t_ns,
            kind,
            role,
            peer,
            label,
            seq: msg_seq,
        })
    }

    pub(super) fn drain() -> Vec<ThreadTrace> {
        let rings = registry().lock().expect("trace registry poisoned");
        let mut traces = Vec::with_capacity(rings.len());
        for ring in rings.iter() {
            let tail = ring.tail.load(Ordering::Acquire);
            let drained = ring.drained.load(Ordering::Relaxed);
            // Oldest index still resident in the ring.
            let start = drained.max(tail.saturating_sub(RING_CAPACITY as u64));
            let mut dropped = start - drained;
            let mut events = Vec::with_capacity((tail - start) as usize);
            for index in start..tail {
                let slot = &ring.slots[(index % RING_CAPACITY as u64) as usize];
                let expected_seq = 2 * (index / RING_CAPACITY as u64 + 1);
                match read_slot(slot, expected_seq) {
                    Some(event) => events.push(event),
                    // Lapped or torn while we were reading: the writer
                    // has moved on, count it as dropped.
                    None => dropped += 1,
                }
            }
            ring.drained.store(tail, Ordering::Relaxed);
            if !events.is_empty() || dropped > 0 {
                traces.push(ThreadTrace {
                    thread: ring.thread.clone(),
                    events,
                    dropped,
                });
            }
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_drain() {
        let _ = drain(); // isolate from other tests on this thread
        event(Kind::Send, "RoleA", "RoleB", "Ping");
        event(Kind::Receive, "RoleB", "RoleA", "Ping");
        let traces = drain();
        if crate::ENABLED {
            let events: Vec<_> = traces.iter().flat_map(|t| t.events.iter()).collect();
            assert!(events.len() >= 2);
            let send = events
                .iter()
                .find(|e| e.kind == Kind::Send && e.label == "Ping")
                .expect("send event recorded");
            assert_eq!(send.role, "RoleA");
            assert_eq!(send.peer, "RoleB");
        } else {
            assert!(traces.is_empty());
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        if !crate::ENABLED {
            return;
        }
        std::thread::spawn(|| {
            let overflow = 100;
            for i in 0..RING_CAPACITY + overflow {
                let label = if i % 2 == 0 { "Even" } else { "Odd" };
                event(Kind::Send, "Flood", "Sink", label);
            }
            let traces = drain();
            let trace = traces
                .iter()
                .find(|t| t.events.iter().any(|e| e.role == "Flood"))
                .expect("flood ring drained");
            assert_eq!(trace.events.len(), RING_CAPACITY);
            assert_eq!(trace.dropped, overflow as u64);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let first = now_ns();
        let second = now_ns();
        assert!(second >= first);
    }

    #[test]
    fn chrome_json_shape() {
        let traces = vec![ThreadTrace {
            thread: "worker-0".into(),
            events: vec![TraceEvent {
                t_ns: 1500,
                kind: Kind::Send,
                role: "S",
                peer: "T",
                label: "Value",
                seq: 0,
            }],
            dropped: 0,
        }];
        let json = chrome_trace_json(&traces);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\":\"send\""));
        assert!(json.contains("\"label\":\"Value\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("worker-0"));
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    fn frame_event(
        kind: Kind,
        role: &'static str,
        peer: &'static str,
        t_ns: u64,
        seq: u64,
    ) -> TraceEvent {
        TraceEvent {
            t_ns,
            kind,
            role,
            peer,
            label: "frame",
            seq,
        }
    }

    #[test]
    fn dump_text_round_trips_through_parse() {
        let dump = ProcessDump {
            process: "S".into(),
            peer_offsets: vec![("T".into(), -12345)],
            traces: vec![ThreadTrace {
                thread: "netlink-writer S->T".into(),
                events: vec![
                    frame_event(Kind::FrameSend, "S", "T", 1000, 1),
                    frame_event(Kind::FrameSend, "S", "T", 2000, 2),
                ],
                dropped: 3,
            }],
        };
        let text = render_dump(&dump);
        let parsed = parse_dump(&text).expect("dump parses");
        assert_eq!(parsed.process, "S");
        assert_eq!(parsed.peer_offsets, vec![("T".to_owned(), -12345)]);
        assert_eq!(parsed.traces.len(), 1);
        assert_eq!(parsed.traces[0].thread, "netlink-writer S->T");
        assert_eq!(parsed.traces[0].dropped, 3);
        assert_eq!(parsed.traces[0].events.len(), 2);
        assert_eq!(parsed.traces[0].events[1].seq, 2);
        assert_eq!(parsed.traces[0].events[1].kind, Kind::FrameSend);
        assert_eq!(parsed.traces[0].events[1].role, "S");
    }

    #[test]
    fn parse_dump_rejects_garbage() {
        assert!(parse_dump("not a dump").is_err());
        assert!(parse_dump("rumpsteak-trace-dump v1\nbogus\tline\n").is_err());
        assert!(parse_dump("rumpsteak-trace-dump v1\n").is_err()); // no process
    }

    #[test]
    fn merge_emits_flow_events_and_aligns_clocks() {
        // Process S stamps with a clock 1 ms ahead of T's; T measured
        // offset(S) = +1_000_000 during the handshake. T is the
        // reference (first dump).
        let t_dump = ProcessDump {
            process: "T".into(),
            peer_offsets: vec![("S".into(), 1_000_000)],
            traces: vec![ThreadTrace {
                thread: "netlink-reader S->T".into(),
                events: vec![frame_event(Kind::FrameRecv, "S", "T", 5_000, 1)],
                dropped: 0,
            }],
        };
        let s_dump = ProcessDump {
            process: "S".into(),
            peer_offsets: vec![],
            traces: vec![ThreadTrace {
                thread: "netlink-writer S->T".into(),
                events: vec![frame_event(Kind::FrameSend, "S", "T", 1_002_000, 1)],
                dropped: 0,
            }],
        };
        let (json, report) = merge_chrome_trace(&[t_dump, s_dump]);
        assert_eq!(report.flows, 1);
        assert_eq!(report.edges.len(), 1);
        let edge = &report.edges[0];
        assert_eq!((edge.from.as_str(), edge.to.as_str()), ("S", "T"));
        assert_eq!((edge.sends, edge.recvs, edge.matched), (1, 1, 1));
        // Both phases of the flow pair are present, with distinct pids.
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"process_name\""));
        // S's event shifted by -offset: 1_002_000 - 1_000_000 = 2_000 ns
        // against T's 5_000 ns; normalised base is 2_000, so the send
        // lands at ts 0 and the receive at 3 us.
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"ts\":3.000"));
    }

    #[test]
    fn merge_reports_unmatched_edges() {
        let only_sends = ProcessDump {
            process: "A".into(),
            peer_offsets: vec![],
            traces: vec![ThreadTrace {
                thread: "w".into(),
                events: vec![frame_event(Kind::FrameSend, "A", "B", 10, 1)],
                dropped: 0,
            }],
        };
        let (_, report) = merge_chrome_trace(&[only_sends]);
        assert_eq!(report.flows, 0);
        assert_eq!(report.edges.len(), 1);
        assert_eq!(report.edges[0].matched, 0);
        assert_eq!(report.edges[0].sends, 1);
    }

    #[test]
    fn peer_offset_table_round_trips() {
        set_peer_offset("OffsetPeer", 42);
        set_peer_offset("OffsetPeer", -7);
        let offsets = peer_offsets();
        if crate::ENABLED {
            let entry = offsets
                .iter()
                .find(|(peer, _)| peer == "OffsetPeer")
                .expect("offset registered");
            assert_eq!(entry.1, -7);
        } else {
            assert!(offsets.is_empty());
        }
    }
}
