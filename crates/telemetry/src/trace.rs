//! Session event tracing: per-thread lock-free bounded rings.
//!
//! Every session `Send`/`Receive`/`Select`/`Branch` future calls
//! [`event`] when it completes. Events land in a ring owned by the
//! *calling thread* (single writer, no contention, no locks on the hot
//! path); rings are bounded and **drop-oldest** — a slow consumer can
//! never stall the workload, and the number of overwritten events is
//! reported per thread so a truncated trace is never mistaken for a
//! complete one.
//!
//! Each slot is a group of `AtomicU64` words guarded by a per-slot
//! seqlock sequence word, so a drain racing a writer reads only atomic
//! words (no data-race UB) and discards any slot whose sequence moved
//! mid-read. Role/peer/label strings are `&'static str` (they come from
//! `std::any::type_name` or string literals); the ring stores their
//! pointer and length as integers and reconstructs the `&'static str`
//! only after the seqlock validates that both words came from the same
//! write.
//!
//! [`drain`] collects all rings into [`ThreadTrace`]s and
//! [`chrome_trace_json`] renders them in the Chrome trace-event format
//! accepted by `chrome://tracing` and Perfetto.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, Mutex, OnceLock};

/// Session events per thread ring; the oldest events are overwritten
/// once a thread exceeds this many undrained events.
pub const RING_CAPACITY: usize = 8192;

/// The four session operations that emit trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A message was enqueued (`Send` resolved).
    Send,
    /// A message was dequeued (`Receive` resolved).
    Receive,
    /// An internal choice was made and its label sent (`Select`).
    Select,
    /// An external choice was received (`Branch` resolved).
    Branch,
}

impl Kind {
    /// Stable lowercase name, used as the Chrome trace event category.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kind::Send => "send",
            Kind::Receive => "receive",
            Kind::Select => "select",
            Kind::Branch => "branch",
        }
    }

    #[cfg(feature = "telemetry")]
    fn from_u8(byte: u8) -> Kind {
        match byte {
            0 => Kind::Send,
            1 => Kind::Receive,
            2 => Kind::Select,
            _ => Kind::Branch,
        }
    }

    #[cfg(feature = "telemetry")]
    fn as_u8(self) -> u8 {
        match self {
            Kind::Send => 0,
            Kind::Receive => 1,
            Kind::Select => 2,
            Kind::Branch => 3,
        }
    }
}

/// One recorded session event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch (first event or first
    /// call to [`now_ns`], whichever came first).
    pub t_ns: u64,
    /// Operation kind.
    pub kind: Kind,
    /// Role executing the operation.
    pub role: &'static str,
    /// Peer role on the other end of the link.
    pub peer: &'static str,
    /// Message or choice label.
    pub label: &'static str,
}

/// All events drained from one thread's ring, oldest first.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// Thread name, or `thread-<n>` for unnamed threads.
    pub thread: String,
    /// Surviving events in timestamp order for this thread.
    pub events: Vec<TraceEvent>,
    /// Events overwritten (ring full) or torn (overwritten mid-drain)
    /// and therefore missing from `events`.
    pub dropped: u64,
}

/// Nanoseconds since the process trace epoch. The epoch is pinned the
/// first time any thread records or asks for a timestamp, so all rings
/// share one clock. Always available (even without the feature) so
/// callers can stamp their own phase markers consistently.
pub fn now_ns() -> u64 {
    static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// Records one session event into the calling thread's ring. Compiles
/// to nothing without the `telemetry` feature.
#[inline]
pub fn event(kind: Kind, role: &'static str, peer: &'static str, label: &'static str) {
    #[cfg(feature = "telemetry")]
    enabled::event(kind, role, peer, label);
    #[cfg(not(feature = "telemetry"))]
    let _ = (kind, role, peer, label);
}

/// Drains every thread ring into per-thread traces (oldest first),
/// advancing each ring's read cursor. Empty in disabled builds.
pub fn drain() -> Vec<ThreadTrace> {
    #[cfg(feature = "telemetry")]
    return enabled::drain();
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Renders drained traces as a Chrome trace-event JSON document
/// (instant events, one `tid` per thread), loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(traces: &[ThreadTrace]) -> String {
    let mut out =
        String::with_capacity(256 + traces.iter().map(|t| t.events.len()).sum::<usize>() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (tid, trace) in traces.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        // Thread name metadata record.
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"args\":{\"name\":");
        push_json_string(&mut out, &trace.thread);
        out.push_str("}}");
        for event in &trace.events {
            out.push_str(",{\"name\":");
            let name = format!(
                "{} {} {}",
                event.role,
                match event.kind {
                    Kind::Send | Kind::Select => "->",
                    Kind::Receive | Kind::Branch => "<-",
                },
                event.peer
            );
            push_json_string(&mut out, &name);
            out.push_str(",\"cat\":\"");
            out.push_str(event.kind.as_str());
            out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"ts\":");
            // Chrome expects microseconds; keep nanosecond precision as a
            // fraction.
            out.push_str(&format!("{:.3}", event.t_ns as f64 / 1000.0));
            out.push_str(",\"args\":{\"label\":");
            push_json_string(&mut out, event.label);
            out.push_str(",\"peer\":");
            push_json_string(&mut out, event.peer);
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
}

#[cfg(feature = "telemetry")]
mod enabled {
    use super::*;

    /// One event slot: six atomic words validated by a per-slot seqlock.
    ///
    /// `seq` is odd while the writer is mid-update and even when stable;
    /// the write of global index `i` leaves `seq == 2 * (i / CAPACITY + 1)`,
    /// so a drain can tell whether the slot still holds the event it is
    /// looking for or has been lapped.
    struct Slot {
        seq: AtomicU64,
        t_ns: AtomicU64,
        role_ptr: AtomicU64,
        peer_ptr: AtomicU64,
        label_ptr: AtomicU64,
        /// `role_len | peer_len << 16 | label_len << 32 | kind << 48`.
        lens_kind: AtomicU64,
    }

    impl Slot {
        fn new() -> Slot {
            Slot {
                seq: AtomicU64::new(0),
                t_ns: AtomicU64::new(0),
                role_ptr: AtomicU64::new(0),
                peer_ptr: AtomicU64::new(0),
                label_ptr: AtomicU64::new(0),
                lens_kind: AtomicU64::new(0),
            }
        }
    }

    struct Ring {
        thread: String,
        /// Next global write index (monotonic; slot = index % capacity).
        tail: AtomicU64,
        /// Next global index to hand out on drain.
        drained: AtomicU64,
        slots: Box<[Slot]>,
    }

    // The ring only ever stores pointers to `&'static str` data and
    // integers; it is safe to share across threads (all access is via
    // atomics).
    unsafe impl Send for Ring {}
    unsafe impl Sync for Ring {}

    fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    }

    fn ring_for_current_thread() -> Arc<Ring> {
        RING.with(|cell| {
            cell.get_or_init(|| {
                let mut rings = registry().lock().expect("trace registry poisoned");
                let thread = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("thread-{}", rings.len()));
                let ring = Arc::new(Ring {
                    thread,
                    tail: AtomicU64::new(0),
                    drained: AtomicU64::new(0),
                    slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
                });
                rings.push(ring.clone());
                ring
            })
            .clone()
        })
    }

    pub(super) fn event(kind: Kind, role: &'static str, peer: &'static str, label: &'static str) {
        let t_ns = now_ns();
        let ring = ring_for_current_thread();
        let index = ring.tail.load(Ordering::Relaxed);
        let slot = &ring.slots[(index % RING_CAPACITY as u64) as usize];

        // Seqlock write: mark the slot unstable *before* touching its
        // data words so a concurrent drain can never validate a torn
        // read. The release fence keeps the odd store ahead of the data
        // stores; the final release store publishes them.
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.role_ptr.store(role.as_ptr() as u64, Ordering::Relaxed);
        slot.peer_ptr.store(peer.as_ptr() as u64, Ordering::Relaxed);
        slot.label_ptr
            .store(label.as_ptr() as u64, Ordering::Relaxed);
        let lens_kind = role.len() as u64
            | (peer.len() as u64) << 16
            | (label.len() as u64) << 32
            | (kind.as_u8() as u64) << 48;
        slot.lens_kind.store(lens_kind, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);

        // Publishing the new tail last means drains only look at slots
        // that have completed at least one write.
        ring.tail.store(index + 1, Ordering::Release);
    }

    /// Reconstructs a `&'static str` from a validated (ptr, len) pair.
    ///
    /// # Safety
    /// Both words must come from the same seqlock-validated slot write,
    /// in which case they are exactly the pieces of a live `&'static str`
    /// the writer held.
    unsafe fn rebuild_str(ptr: u64, len: usize) -> &'static str {
        std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len))
    }

    fn read_slot(slot: &Slot, expected_seq: u64) -> Option<TraceEvent> {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != expected_seq {
            // Mid-write (odd) or already lapped by a newer event.
            return None;
        }
        let t_ns = slot.t_ns.load(Ordering::Relaxed);
        let role_ptr = slot.role_ptr.load(Ordering::Relaxed);
        let peer_ptr = slot.peer_ptr.load(Ordering::Relaxed);
        let label_ptr = slot.label_ptr.load(Ordering::Relaxed);
        let lens_kind = slot.lens_kind.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != expected_seq {
            return None;
        }
        let role_len = (lens_kind & 0xffff) as usize;
        let peer_len = (lens_kind >> 16 & 0xffff) as usize;
        let label_len = (lens_kind >> 32 & 0xffff) as usize;
        let kind = Kind::from_u8((lens_kind >> 48) as u8);
        // SAFETY: the seqlock round-trip above proves every word read
        // belongs to one completed write of this slot.
        let (role, peer, label) = unsafe {
            (
                rebuild_str(role_ptr, role_len),
                rebuild_str(peer_ptr, peer_len),
                rebuild_str(label_ptr, label_len),
            )
        };
        Some(TraceEvent {
            t_ns,
            kind,
            role,
            peer,
            label,
        })
    }

    pub(super) fn drain() -> Vec<ThreadTrace> {
        let rings = registry().lock().expect("trace registry poisoned");
        let mut traces = Vec::with_capacity(rings.len());
        for ring in rings.iter() {
            let tail = ring.tail.load(Ordering::Acquire);
            let drained = ring.drained.load(Ordering::Relaxed);
            // Oldest index still resident in the ring.
            let start = drained.max(tail.saturating_sub(RING_CAPACITY as u64));
            let mut dropped = start - drained;
            let mut events = Vec::with_capacity((tail - start) as usize);
            for index in start..tail {
                let slot = &ring.slots[(index % RING_CAPACITY as u64) as usize];
                let expected_seq = 2 * (index / RING_CAPACITY as u64 + 1);
                match read_slot(slot, expected_seq) {
                    Some(event) => events.push(event),
                    // Lapped or torn while we were reading: the writer
                    // has moved on, count it as dropped.
                    None => dropped += 1,
                }
            }
            ring.drained.store(tail, Ordering::Relaxed);
            if !events.is_empty() || dropped > 0 {
                traces.push(ThreadTrace {
                    thread: ring.thread.clone(),
                    events,
                    dropped,
                });
            }
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_drain() {
        let _ = drain(); // isolate from other tests on this thread
        event(Kind::Send, "RoleA", "RoleB", "Ping");
        event(Kind::Receive, "RoleB", "RoleA", "Ping");
        let traces = drain();
        if crate::ENABLED {
            let events: Vec<_> = traces.iter().flat_map(|t| t.events.iter()).collect();
            assert!(events.len() >= 2);
            let send = events
                .iter()
                .find(|e| e.kind == Kind::Send && e.label == "Ping")
                .expect("send event recorded");
            assert_eq!(send.role, "RoleA");
            assert_eq!(send.peer, "RoleB");
        } else {
            assert!(traces.is_empty());
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        if !crate::ENABLED {
            return;
        }
        std::thread::spawn(|| {
            let overflow = 100;
            for i in 0..RING_CAPACITY + overflow {
                let label = if i % 2 == 0 { "Even" } else { "Odd" };
                event(Kind::Send, "Flood", "Sink", label);
            }
            let traces = drain();
            let trace = traces
                .iter()
                .find(|t| t.events.iter().any(|e| e.role == "Flood"))
                .expect("flood ring drained");
            assert_eq!(trace.events.len(), RING_CAPACITY);
            assert_eq!(trace.dropped, overflow as u64);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let first = now_ns();
        let second = now_ns();
        assert!(second >= first);
    }

    #[test]
    fn chrome_json_shape() {
        let traces = vec![ThreadTrace {
            thread: "worker-0".into(),
            events: vec![TraceEvent {
                t_ns: 1500,
                kind: Kind::Send,
                role: "S",
                peer: "T",
                label: "Value",
            }],
            dropped: 0,
        }];
        let json = chrome_trace_json(&traces);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\":\"send\""));
        assert!(json.contains("\"label\":\"Value\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("worker-0"));
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
