//! The relaxed atomic counter and its cache-line padding.

/// Pads and aligns `T` to 128 bytes so per-worker counter blocks never
/// share a cache line (two lines on x86, where the spatial prefetcher
/// pairs adjacent lines). A ZST payload stays zero-sized, so disabled
/// telemetry builds allocate nothing.
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` with cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// A monotonically increasing event counter.
///
/// With the `telemetry` feature this is a relaxed `AtomicU64`: increments
/// are single uncontended RMWs on counters owned by one worker, and
/// relaxed ordering is enough because snapshots only need eventually
/// consistent totals (exactness is guaranteed once the counted threads
/// are quiescent, which is when the tests read them). Without the
/// feature it is a ZST whose methods are empty `#[inline]` bodies.
#[derive(Default)]
pub struct Counter {
    #[cfg(feature = "telemetry")]
    value: std::sync::atomic::AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "telemetry")]
            value: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        self.value
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Current value (0 in disabled builds).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        return self.value.load(std::sync::atomic::Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        0
    }

    /// Raises the counter to `n` if it is below (used for high-watermark
    /// tracking; relaxed `fetch_max`).
    #[inline]
    pub fn record_max(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        self.value
            .fetch_max(n, std::sync::atomic::Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_when_enabled() {
        let counter = Counter::new();
        counter.incr();
        counter.add(4);
        counter.record_max(2);
        if crate::ENABLED {
            assert_eq!(counter.get(), 5);
        } else {
            assert_eq!(counter.get(), 0);
            assert_eq!(std::mem::size_of::<Counter>(), 0);
        }
    }

    #[test]
    fn record_max_is_a_watermark() {
        let counter = Counter::new();
        counter.record_max(7);
        counter.record_max(3);
        if crate::ENABLED {
            assert_eq!(counter.get(), 7);
        }
    }

    #[test]
    fn cache_padding_separates_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<Counter>>(), 128);
        let padded = CachePadded::new(Counter::new());
        padded.incr();
        assert_eq!(padded.get(), if crate::ENABLED { 1 } else { 0 });
    }
}
