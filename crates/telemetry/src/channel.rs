//! Per-link channel statistics and the k-MC bound registry.
//!
//! Session links are SPSC rings between two *named* roles; the executor
//! registers each direction here as `from → to` when a labelled link is
//! created, and the generated `connect()` (or a hand-written `roles!`
//! `bounds` clause) registers the statically verified k-MC bound for the
//! same pair. All instances of a named link share one `LinkCell`, so
//! the reported high-watermark is the maximum over every session ever
//! run — which is exactly the quantity the static bound promises to cap.
//!
//! Beyond the watermark-vs-bound check, the cell carries the data-plane
//! efficiency counters the zero-copy path is judged by: `sends` against
//! `wakes` (how many messages travelled per waker handoff), `batches`
//! against `batched_messages` (the realised batch factor), pool
//! `hits`/`misses` (payload-buffer reuse against the k-MC working set),
//! `backpressure_parks` (a *verified* protocol on a bounded ring must
//! report zero) and `shrinks` (oversized rings retired at quiescent
//! points). The registered `batch_window` mirrors the k-MC bound the
//! receive window was sized from, so tooling can assert
//! `batch_window <= kmc_bound` per link.
//!
//! Hot-path updates (`LinkStats::record_depth` and friends) are relaxed
//! atomic RMWs on the shared cell; the global registry mutex is touched
//! only on registration (link creation) and snapshots, never per message.

#[cfg(feature = "telemetry")]
use std::collections::HashMap;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, Mutex, OnceLock};

#[cfg(feature = "telemetry")]
use crate::hist::Histogram;
use crate::hist::HistogramSnapshot;
#[cfg(feature = "telemetry")]
use crate::Counter;

/// Slots in a link's latency stamp ring. A power of two so indexing is
/// a mask; deep enough that a stamp is only overwritten after 1024
/// further sends — far beyond any verified k-MC bound — so the seqlock
/// tag check below almost never misses on an in-process link.
#[cfg(feature = "telemetry")]
const STAMP_SLOTS: usize = 1024;

/// One stamp: the send-side monotonic time `t`, published under a
/// sequence `tag` (send index + 1) with release ordering so a reader
/// that observes the tag also observes the time.
#[cfg(feature = "telemetry")]
struct StampSlot {
    tag: AtomicU64,
    t: AtomicU64,
}

/// Shared statistics cell for one directed link `from → to`.
#[cfg(feature = "telemetry")]
struct LinkCell {
    from: &'static str,
    to: &'static str,
    /// Maximum observed occupancy (messages in flight) across instances.
    high_watermark: Counter,
    /// Ring growth events.
    grows: Counter,
    /// Quiescent-point shrink events (oversized buffers retired).
    shrinks: Counter,
    /// Waker-handoff CAS retries (contended registration/wake races).
    waker_retries: Counter,
    /// Messages published.
    sends: Counter,
    /// Consumer wakeups actually delivered (armed waker handed to the
    /// scheduler); `sends - wakes` messages travelled for free.
    wakes: Counter,
    /// Batch-receive drains performed.
    batches: Counter,
    /// Messages moved by those drains (`batched_messages / batches` is
    /// the realised window).
    batched_messages: Counter,
    /// Payload buffers served from the link's pool.
    pool_hits: Counter,
    /// Payload buffers freshly allocated because the pool was empty.
    pool_misses: Counter,
    /// Producer parks on a full bounded ring (back-pressure engaged;
    /// zero for a verified protocol running at its k-MC capacity).
    backpressure_parks: Counter,
    /// Link instances created under this name pair.
    instances: Counter,
    /// Statically verified k-MC bound; 0 = not registered.
    bound: AtomicU64,
    /// Batch-receive window the link runs with; 0 = not registered.
    batch_window: AtomicU64,
    /// Send→recv latency histogram fed by the stamp ring.
    latency: Histogram,
    /// Monotone index of the next send stamp.
    stamp_send_seq: AtomicU64,
    /// Monotone index of the next recv stamp read.
    stamp_recv_seq: AtomicU64,
    /// Recv stamps whose slot had been overwritten (or whose sender ran
    /// in another process) — counted, never recorded as a latency.
    stamp_misses: Counter,
    /// The stamp ring itself.
    stamps: Box<[StampSlot]>,
}

#[cfg(feature = "telemetry")]
type Registry = Mutex<HashMap<(&'static str, &'static str), Arc<LinkCell>>>;

#[cfg(feature = "telemetry")]
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

#[cfg(feature = "telemetry")]
fn cell(from: &'static str, to: &'static str) -> Arc<LinkCell> {
    registry()
        .lock()
        .expect("channel registry poisoned")
        .entry((from, to))
        .or_insert_with(|| {
            Arc::new(LinkCell {
                from,
                to,
                high_watermark: Counter::new(),
                grows: Counter::new(),
                shrinks: Counter::new(),
                waker_retries: Counter::new(),
                sends: Counter::new(),
                wakes: Counter::new(),
                batches: Counter::new(),
                batched_messages: Counter::new(),
                pool_hits: Counter::new(),
                pool_misses: Counter::new(),
                backpressure_parks: Counter::new(),
                instances: Counter::new(),
                bound: AtomicU64::new(0),
                batch_window: AtomicU64::new(0),
                latency: Histogram::new(),
                stamp_send_seq: AtomicU64::new(0),
                stamp_recv_seq: AtomicU64::new(0),
                stamp_misses: Counter::new(),
                stamps: (0..STAMP_SLOTS)
                    .map(|_| StampSlot {
                        tag: AtomicU64::new(0),
                        t: AtomicU64::new(0),
                    })
                    .collect(),
            })
        })
        .clone()
}

/// Hot-path statistics handle stored inside each instrumented SPSC ring.
///
/// A ZST in disabled builds; [`Default`] yields an *unlabelled* handle
/// whose recorders are no-ops even with telemetry on (anonymous channels
/// — join handles, baselines — stay untracked).
#[derive(Clone, Default)]
pub struct LinkStats {
    #[cfg(feature = "telemetry")]
    cell: Option<Arc<LinkCell>>,
    #[cfg(feature = "telemetry")]
    stamp_send: bool,
    #[cfg(feature = "telemetry")]
    stamp_recv: bool,
}

/// Expands to a no-op recorder in disabled builds and a guarded
/// cell update in telemetry builds — every recorder below has the
/// same shape.
macro_rules! recorder {
    ($(#[$doc:meta])* $name:ident => |$cell:ident| $body:expr) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(&self) {
            #[cfg(feature = "telemetry")]
            if let Some($cell) = &self.cell {
                $body;
            }
        }
    };
}

impl LinkStats {
    /// Records an observed queue depth (messages in flight immediately
    /// after a send), raising the link's high-watermark.
    ///
    /// In debug builds this also asserts the depth stays within the
    /// registered k-MC bound, turning the checker's static guarantee into
    /// a runtime invariant; release builds only report the violation via
    /// [`snapshot`] (`high_watermark > kmc_bound`).
    #[inline]
    pub fn record_depth(&self, depth: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.high_watermark.record_max(depth);
            #[cfg(debug_assertions)]
            {
                let bound = cell.bound.load(Ordering::Relaxed);
                debug_assert!(
                    bound == 0 || depth <= bound,
                    "channel {} -> {} exceeded its verified k-MC bound: \
                     depth {depth} > k = {bound}",
                    cell.from,
                    cell.to,
                );
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = depth;
    }

    recorder! {
        /// Records one ring growth event.
        record_grow => |cell| cell.grows.incr()
    }

    recorder! {
        /// Records one quiescent-point shrink event.
        record_shrink => |cell| cell.shrinks.incr()
    }

    recorder! {
        /// Records one waker-handoff CAS retry.
        record_waker_retry => |cell| cell.waker_retries.incr()
    }

    recorder! {
        /// Records one published message.
        record_send => |cell| cell.sends.incr()
    }

    recorder! {
        /// Records one delivered consumer wakeup.
        record_wake => |cell| cell.wakes.incr()
    }

    recorder! {
        /// Records one payload buffer served from the pool.
        record_pool_hit => |cell| cell.pool_hits.incr()
    }

    recorder! {
        /// Records one payload buffer allocated past the pool.
        record_pool_miss => |cell| cell.pool_misses.incr()
    }

    recorder! {
        /// Records one producer park under back-pressure.
        record_backpressure_park => |cell| cell.backpressure_parks.incr()
    }

    /// Records one batch-receive drain of `n` messages.
    #[inline]
    pub fn record_batch(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.batches.incr();
            cell.batched_messages.add(n);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Returns this handle with its stamp sides reconfigured. Both sides
    /// default to on; a transport link disables the side whose ring
    /// terminates in an I/O thread rather than a session future, so the
    /// wire segment is measured by the frame trace context instead of
    /// double-counted here.
    #[must_use]
    pub fn with_stamps(self, send: bool, recv: bool) -> Self {
        #[cfg(feature = "telemetry")]
        {
            let mut this = self;
            this.stamp_send = send;
            this.stamp_recv = recv;
            this
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (send, recv);
            self
        }
    }

    /// Publishes a send timestamp into the link's stamp ring. Called at
    /// slot commit, *before* the tail release store, so the matching
    /// receive — which cannot observe the message earlier — finds the
    /// stamp already tagged.
    #[inline]
    pub fn stamp_send(&self) {
        #[cfg(feature = "telemetry")]
        if self.stamp_send {
            if let Some(cell) = &self.cell {
                let index = cell.stamp_send_seq.fetch_add(1, Ordering::Relaxed);
                let slot = &cell.stamps[index as usize & (STAMP_SLOTS - 1)];
                slot.t.store(crate::trace::now_ns(), Ordering::Relaxed);
                slot.tag.store(index + 1, Ordering::Release);
            }
        }
    }

    /// Consumes the next recv stamp and records `now - send_time` into
    /// the link's latency histogram. Seqlock-validated: if the slot's
    /// tag does not match this receive's index (ring overwritten, or the
    /// sender lives in another process and never stamped), the read is a
    /// counted miss, never a bogus latency.
    #[inline]
    pub fn stamp_recv(&self) {
        #[cfg(feature = "telemetry")]
        if self.stamp_recv {
            if let Some(cell) = &self.cell {
                let index = cell.stamp_recv_seq.fetch_add(1, Ordering::Relaxed);
                let slot = &cell.stamps[index as usize & (STAMP_SLOTS - 1)];
                if slot.tag.load(Ordering::Acquire) == index + 1 {
                    let t = slot.t.load(Ordering::Relaxed);
                    // Revalidate: a racing sender lapping the ring would
                    // have bumped the tag past ours.
                    if slot.tag.load(Ordering::Acquire) == index + 1 {
                        cell.latency
                            .record(crate::trace::now_ns().saturating_sub(t));
                        return;
                    }
                }
                cell.stamp_misses.incr();
            }
        }
    }

    /// Consumes `n` recv stamps (a batch drain observed at one instant).
    #[inline]
    pub fn stamp_recv_batch(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        for _ in 0..n {
            self.stamp_recv();
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }
}

/// Registers (or re-attaches to) the directed link `from → to` and
/// returns its hot-path handle. No-op handle in disabled builds.
pub fn register(from: &'static str, to: &'static str) -> LinkStats {
    #[cfg(feature = "telemetry")]
    {
        let cell = cell(from, to);
        cell.instances.incr();
        LinkStats {
            cell: Some(cell),
            stamp_send: true,
            stamp_recv: true,
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (from, to);
        LinkStats::default()
    }
}

/// Attaches to the directed link `from → to` *without* counting a new
/// instance: auxiliary structures sharing a link's telemetry cell (its
/// payload-buffer pool, say) record onto the same counters without
/// inflating `instances`. No-op handle in disabled builds.
pub fn attach(from: &'static str, to: &'static str) -> LinkStats {
    #[cfg(feature = "telemetry")]
    {
        LinkStats {
            cell: Some(cell(from, to)),
            stamp_send: true,
            stamp_recv: true,
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (from, to);
        LinkStats::default()
    }
}

/// Registers the statically verified k-MC bound for the directed link
/// `from → to`. Re-registration keeps the larger bound (two protocols
/// sharing role names must both hold, so the looser cap is the one every
/// observation is checked against).
pub fn set_bound(from: &'static str, to: &'static str, k: u64) {
    #[cfg(feature = "telemetry")]
    {
        if k == 0 {
            return;
        }
        cell(from, to).bound.fetch_max(k, Ordering::Relaxed);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (from, to, k);
}

/// Registers the batch-receive window the link `from → to` runs with,
/// so snapshots can check it against the registered k-MC bound.
/// Re-registration keeps the larger window (mirroring [`set_bound`]).
pub fn set_batch_window(from: &'static str, to: &'static str, window: u64) {
    #[cfg(feature = "telemetry")]
    {
        if window == 0 {
            return;
        }
        cell(from, to)
            .batch_window
            .fetch_max(window, Ordering::Relaxed);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (from, to, window);
}

/// Point-in-time statistics for one directed link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Sending role name.
    pub from: &'static str,
    /// Receiving role name.
    pub to: &'static str,
    /// Maximum observed occupancy across all instances.
    pub high_watermark: u64,
    /// Ring growth events.
    pub grows: u64,
    /// Quiescent-point shrink events.
    pub shrinks: u64,
    /// Waker-handoff CAS retries.
    pub waker_retries: u64,
    /// Messages published.
    pub sends: u64,
    /// Consumer wakeups delivered.
    pub wakes: u64,
    /// Batch-receive drains.
    pub batches: u64,
    /// Messages moved by batch drains.
    pub batched_messages: u64,
    /// Payload buffers served from the pool.
    pub pool_hits: u64,
    /// Payload buffers allocated past the pool.
    pub pool_misses: u64,
    /// Producer parks under back-pressure.
    pub backpressure_parks: u64,
    /// Link instances created under this name pair.
    pub instances: u64,
    /// Registered k-MC bound, if any.
    pub kmc_bound: Option<u64>,
    /// Registered batch-receive window, if any.
    pub batch_window: Option<u64>,
    /// Send→recv latency distribution (empty when no stamp pair landed).
    pub latency: HistogramSnapshot,
    /// Recv stamps that failed seqlock validation.
    pub stamp_misses: u64,
}

impl LinkSnapshot {
    /// Headroom between the static bound and the observed watermark:
    /// `Some(bound - high_watermark)` when a bound is registered and
    /// holds, `None` when unregistered or violated.
    pub fn slack(&self) -> Option<u64> {
        self.kmc_bound
            .and_then(|k| k.checked_sub(self.high_watermark))
    }

    /// True when a bound is registered and the observation exceeds it.
    pub fn violates_bound(&self) -> bool {
        matches!(self.kmc_bound, Some(k) if self.high_watermark > k)
    }

    /// True when a batch window is registered *above* the registered
    /// k-MC bound — draining more than k per round-trip would read past
    /// what the verification covers.
    pub fn violates_batch_window(&self) -> bool {
        matches!(
            (self.batch_window, self.kmc_bound),
            (Some(window), Some(k)) if window > k
        )
    }
}

/// Snapshots every registered link, sorted by `(from, to)`. Empty in
/// disabled builds.
pub fn snapshot() -> Vec<LinkSnapshot> {
    #[cfg(feature = "telemetry")]
    {
        let mut links: Vec<LinkSnapshot> = registry()
            .lock()
            .expect("channel registry poisoned")
            .values()
            .map(|cell| {
                let bound = cell.bound.load(Ordering::Relaxed);
                let batch_window = cell.batch_window.load(Ordering::Relaxed);
                LinkSnapshot {
                    from: cell.from,
                    to: cell.to,
                    high_watermark: cell.high_watermark.get(),
                    grows: cell.grows.get(),
                    shrinks: cell.shrinks.get(),
                    waker_retries: cell.waker_retries.get(),
                    sends: cell.sends.get(),
                    wakes: cell.wakes.get(),
                    batches: cell.batches.get(),
                    batched_messages: cell.batched_messages.get(),
                    pool_hits: cell.pool_hits.get(),
                    pool_misses: cell.pool_misses.get(),
                    backpressure_parks: cell.backpressure_parks.get(),
                    instances: cell.instances.get(),
                    kmc_bound: (bound > 0).then_some(bound),
                    batch_window: (batch_window > 0).then_some(batch_window),
                    latency: cell.latency.snapshot(),
                    stamp_misses: cell.stamp_misses.get(),
                }
            })
            .collect();
        links.sort_by_key(|link| (link.from, link.to));
        links
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Clears the registry (tests and trace tools isolating phases).
pub fn reset() {
    #[cfg(feature = "telemetry")]
    registry()
        .lock()
        .expect("channel registry poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_and_bound_round_trip() {
        reset();
        let stats = register("TestA", "TestB");
        set_bound("TestA", "TestB", 3);
        stats.record_depth(1);
        stats.record_depth(3);
        stats.record_depth(2);
        stats.record_grow();
        let links = snapshot();
        if crate::ENABLED {
            let link = links
                .iter()
                .find(|l| l.from == "TestA" && l.to == "TestB")
                .expect("registered link in snapshot");
            assert_eq!(link.high_watermark, 3);
            assert_eq!(link.kmc_bound, Some(3));
            assert_eq!(link.grows, 1);
            assert_eq!(link.slack(), Some(0));
            assert!(!link.violates_bound());
        } else {
            assert!(links.is_empty());
        }
        reset();
    }

    #[test]
    fn instances_merge_into_one_cell() {
        reset();
        let first = register("MergeA", "MergeB");
        let second = register("MergeA", "MergeB");
        first.record_depth(2);
        second.record_depth(5);
        if crate::ENABLED {
            let links = snapshot();
            let link = links.iter().find(|l| l.from == "MergeA").unwrap();
            assert_eq!(link.instances, 2);
            assert_eq!(link.high_watermark, 5);
        }
        reset();
    }

    #[test]
    fn data_plane_counters_round_trip() {
        reset();
        let stats = register("PlaneA", "PlaneB");
        set_bound("PlaneA", "PlaneB", 8);
        set_batch_window("PlaneA", "PlaneB", 8);
        for _ in 0..10 {
            stats.record_send();
        }
        stats.record_wake();
        stats.record_batch(6);
        stats.record_batch(4);
        stats.record_pool_hit();
        stats.record_pool_hit();
        stats.record_pool_miss();
        stats.record_backpressure_park();
        stats.record_shrink();
        let links = snapshot();
        if crate::ENABLED {
            let link = links.iter().find(|l| l.from == "PlaneA").unwrap();
            assert_eq!(link.sends, 10);
            assert_eq!(link.wakes, 1);
            assert_eq!(link.batches, 2);
            assert_eq!(link.batched_messages, 10);
            assert_eq!(link.pool_hits, 2);
            assert_eq!(link.pool_misses, 1);
            assert_eq!(link.backpressure_parks, 1);
            assert_eq!(link.shrinks, 1);
            assert_eq!(link.batch_window, Some(8));
            assert!(!link.violates_batch_window());
            // The messages-per-wake economy the batch path is judged by.
            assert!(link.wakes < link.sends);
        } else {
            assert!(links.is_empty());
        }
        reset();
    }

    #[test]
    fn oversized_batch_window_is_flagged() {
        reset();
        register("WideA", "WideB");
        set_bound("WideA", "WideB", 2);
        set_batch_window("WideA", "WideB", 5);
        if crate::ENABLED {
            let links = snapshot();
            let link = links.iter().find(|l| l.from == "WideA").unwrap();
            assert!(link.violates_batch_window());
        }
        reset();
    }

    #[test]
    fn stamp_pairs_record_latency() {
        reset();
        let stats = register("StampA", "StampB");
        for _ in 0..100 {
            stats.stamp_send();
            stats.stamp_recv();
        }
        let links = snapshot();
        if crate::ENABLED {
            let link = links.iter().find(|l| l.from == "StampA").unwrap();
            assert_eq!(link.latency.count, 100);
            assert_eq!(link.stamp_misses, 0);
            assert!(link.latency.p50() <= link.latency.max);
        } else {
            assert!(links.is_empty());
        }
        reset();
    }

    #[test]
    fn unmatched_recv_stamps_miss_safely() {
        reset();
        // Receiver side of a cross-process link: sends never stamped
        // locally, so every recv stamp must miss, not fabricate data.
        let stats = register("MissA", "MissB").with_stamps(false, true);
        stats.stamp_recv_batch(5);
        let links = snapshot();
        if crate::ENABLED {
            let link = links.iter().find(|l| l.from == "MissA").unwrap();
            assert!(link.latency.is_empty());
            assert_eq!(link.stamp_misses, 5);
        }
        reset();
    }

    #[test]
    fn lapped_stamp_ring_misses_instead_of_lying() {
        reset();
        let stats = register("LapA", "LapB");
        // Send far past the ring capacity without consuming: the first
        // 1024 recv indices find slots overwritten by later sends.
        for _ in 0..(1024 + 64) {
            stats.stamp_send();
        }
        for _ in 0..64 {
            stats.stamp_recv();
        }
        let links = snapshot();
        if crate::ENABLED {
            let link = links.iter().find(|l| l.from == "LapA").unwrap();
            assert_eq!(link.latency.count + link.stamp_misses, 64);
            assert_eq!(link.stamp_misses, 64, "lapped slots must not match");
        }
        reset();
    }

    #[test]
    fn unlabelled_stats_are_inert() {
        let stats = LinkStats::default();
        stats.record_depth(1000);
        stats.record_grow();
        stats.record_shrink();
        stats.record_waker_retry();
        stats.record_send();
        stats.record_wake();
        stats.record_batch(10);
        stats.record_pool_hit();
        stats.record_pool_miss();
        stats.record_backpressure_park();
        stats.stamp_send();
        stats.stamp_recv();
        stats.stamp_recv_batch(3);
        // No panic, nothing registered.
    }
}
