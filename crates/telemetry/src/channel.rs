//! Per-link channel statistics and the k-MC bound registry.
//!
//! Session links are SPSC rings between two *named* roles; the executor
//! registers each direction here as `from → to` when a labelled link is
//! created, and the generated `connect()` (or a hand-written `roles!`
//! `bounds` clause) registers the statically verified k-MC bound for the
//! same pair. All instances of a named link share one `LinkCell`, so
//! the reported high-watermark is the maximum over every session ever
//! run — which is exactly the quantity the static bound promises to cap.
//!
//! Hot-path updates (`LinkStats::record_depth` and friends) are relaxed
//! atomic RMWs on the shared cell; the global registry mutex is touched
//! only on registration (link creation) and snapshots, never per message.

#[cfg(feature = "telemetry")]
use std::collections::HashMap;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, Mutex, OnceLock};

#[cfg(feature = "telemetry")]
use crate::Counter;

/// Shared statistics cell for one directed link `from → to`.
#[cfg(feature = "telemetry")]
struct LinkCell {
    from: &'static str,
    to: &'static str,
    /// Maximum observed occupancy (messages in flight) across instances.
    high_watermark: Counter,
    /// Ring growth events.
    grows: Counter,
    /// Waker-handoff CAS retries (contended registration/wake races).
    waker_retries: Counter,
    /// Link instances created under this name pair.
    instances: Counter,
    /// Statically verified k-MC bound; 0 = not registered.
    bound: AtomicU64,
}

#[cfg(feature = "telemetry")]
type Registry = Mutex<HashMap<(&'static str, &'static str), Arc<LinkCell>>>;

#[cfg(feature = "telemetry")]
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

#[cfg(feature = "telemetry")]
fn cell(from: &'static str, to: &'static str) -> Arc<LinkCell> {
    registry()
        .lock()
        .expect("channel registry poisoned")
        .entry((from, to))
        .or_insert_with(|| {
            Arc::new(LinkCell {
                from,
                to,
                high_watermark: Counter::new(),
                grows: Counter::new(),
                waker_retries: Counter::new(),
                instances: Counter::new(),
                bound: AtomicU64::new(0),
            })
        })
        .clone()
}

/// Hot-path statistics handle stored inside each instrumented SPSC ring.
///
/// A ZST in disabled builds; [`Default`] yields an *unlabelled* handle
/// whose recorders are no-ops even with telemetry on (anonymous channels
/// — join handles, baselines — stay untracked).
#[derive(Clone, Default)]
pub struct LinkStats {
    #[cfg(feature = "telemetry")]
    cell: Option<Arc<LinkCell>>,
}

impl LinkStats {
    /// Records an observed queue depth (messages in flight immediately
    /// after a send), raising the link's high-watermark.
    ///
    /// In debug builds this also asserts the depth stays within the
    /// registered k-MC bound, turning the checker's static guarantee into
    /// a runtime invariant; release builds only report the violation via
    /// [`snapshot`] (`high_watermark > kmc_bound`).
    #[inline]
    pub fn record_depth(&self, depth: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.high_watermark.record_max(depth);
            #[cfg(debug_assertions)]
            {
                let bound = cell.bound.load(Ordering::Relaxed);
                debug_assert!(
                    bound == 0 || depth <= bound,
                    "channel {} -> {} exceeded its verified k-MC bound: \
                     depth {depth} > k = {bound}",
                    cell.from,
                    cell.to,
                );
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = depth;
    }

    /// Records one ring growth event.
    #[inline]
    pub fn record_grow(&self) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.grows.incr();
        }
    }

    /// Records one waker-handoff CAS retry.
    #[inline]
    pub fn record_waker_retry(&self) {
        #[cfg(feature = "telemetry")]
        if let Some(cell) = &self.cell {
            cell.waker_retries.incr();
        }
    }
}

/// Registers (or re-attaches to) the directed link `from → to` and
/// returns its hot-path handle. No-op handle in disabled builds.
pub fn register(from: &'static str, to: &'static str) -> LinkStats {
    #[cfg(feature = "telemetry")]
    {
        let cell = cell(from, to);
        cell.instances.incr();
        LinkStats { cell: Some(cell) }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (from, to);
        LinkStats::default()
    }
}

/// Registers the statically verified k-MC bound for the directed link
/// `from → to`. Re-registration keeps the larger bound (two protocols
/// sharing role names must both hold, so the looser cap is the one every
/// observation is checked against).
pub fn set_bound(from: &'static str, to: &'static str, k: u64) {
    #[cfg(feature = "telemetry")]
    {
        if k == 0 {
            return;
        }
        cell(from, to).bound.fetch_max(k, Ordering::Relaxed);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (from, to, k);
}

/// Point-in-time statistics for one directed link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Sending role name.
    pub from: &'static str,
    /// Receiving role name.
    pub to: &'static str,
    /// Maximum observed occupancy across all instances.
    pub high_watermark: u64,
    /// Ring growth events.
    pub grows: u64,
    /// Waker-handoff CAS retries.
    pub waker_retries: u64,
    /// Link instances created under this name pair.
    pub instances: u64,
    /// Registered k-MC bound, if any.
    pub kmc_bound: Option<u64>,
}

impl LinkSnapshot {
    /// Headroom between the static bound and the observed watermark:
    /// `Some(bound - high_watermark)` when a bound is registered and
    /// holds, `None` when unregistered or violated.
    pub fn slack(&self) -> Option<u64> {
        self.kmc_bound
            .and_then(|k| k.checked_sub(self.high_watermark))
    }

    /// True when a bound is registered and the observation exceeds it.
    pub fn violates_bound(&self) -> bool {
        matches!(self.kmc_bound, Some(k) if self.high_watermark > k)
    }
}

/// Snapshots every registered link, sorted by `(from, to)`. Empty in
/// disabled builds.
pub fn snapshot() -> Vec<LinkSnapshot> {
    #[cfg(feature = "telemetry")]
    {
        let mut links: Vec<LinkSnapshot> = registry()
            .lock()
            .expect("channel registry poisoned")
            .values()
            .map(|cell| {
                let bound = cell.bound.load(Ordering::Relaxed);
                LinkSnapshot {
                    from: cell.from,
                    to: cell.to,
                    high_watermark: cell.high_watermark.get(),
                    grows: cell.grows.get(),
                    waker_retries: cell.waker_retries.get(),
                    instances: cell.instances.get(),
                    kmc_bound: (bound > 0).then_some(bound),
                }
            })
            .collect();
        links.sort_by_key(|link| (link.from, link.to));
        links
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Clears the registry (tests and trace tools isolating phases).
pub fn reset() {
    #[cfg(feature = "telemetry")]
    registry()
        .lock()
        .expect("channel registry poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_and_bound_round_trip() {
        reset();
        let stats = register("TestA", "TestB");
        set_bound("TestA", "TestB", 3);
        stats.record_depth(1);
        stats.record_depth(3);
        stats.record_depth(2);
        stats.record_grow();
        let links = snapshot();
        if crate::ENABLED {
            let link = links
                .iter()
                .find(|l| l.from == "TestA" && l.to == "TestB")
                .expect("registered link in snapshot");
            assert_eq!(link.high_watermark, 3);
            assert_eq!(link.kmc_bound, Some(3));
            assert_eq!(link.grows, 1);
            assert_eq!(link.slack(), Some(0));
            assert!(!link.violates_bound());
        } else {
            assert!(links.is_empty());
        }
        reset();
    }

    #[test]
    fn instances_merge_into_one_cell() {
        reset();
        let first = register("MergeA", "MergeB");
        let second = register("MergeA", "MergeB");
        first.record_depth(2);
        second.record_depth(5);
        if crate::ENABLED {
            let links = snapshot();
            let link = links.iter().find(|l| l.from == "MergeA").unwrap();
            assert_eq!(link.instances, 2);
            assert_eq!(link.high_watermark, 5);
        }
        reset();
    }

    #[test]
    fn unlabelled_stats_are_inert() {
        let stats = LinkStats::default();
        stats.record_depth(1000);
        stats.record_grow();
        stats.record_waker_retry();
        // No panic, nothing registered.
    }
}
