//! The Rust emitter: turns an [`Analysis`] into a self-contained module
//! of `rumpsteak` declarations.
//!
//! Output layout, in order:
//!
//! 1. a header comment recording the protocol and its projections,
//! 2. one `use rumpsteak::{...}` line importing exactly what is used,
//! 3. one payload struct per message label,
//! 4. the `messages!` wire-format enum,
//! 5. the `roles!` mesh declaration,
//! 6. a single `session!` block with one `{Role}Session` entry alias per
//!    role plus one recursion struct per `rec` binder,
//! 7. one `choice!` enum per internal/external choice.
//!
//! Naming: role `s` → type `S`; label `ready` → struct `Ready`; `rec loop`
//! in role `s` → struct `SLoop`; the n-th choice of role `s` → `SChoice`,
//! `SChoice2`, ... Collisions between mangled names resolve by numeric
//! suffix for generated names and are an [`Error`] for user-supplied ones.

use std::collections::{BTreeMap, HashSet};

use theory::global::GlobalType;
use theory::local::LocalType;
use theory::sort::Sort;
use theory::Name;

use crate::naming::{pascal_case, snake_case};
use crate::{Analysis, Error};

/// The rendered module plus the name tables the skeleton emitter reuses.
pub(crate) struct ModuleParts {
    /// The complete module text (what [`rust_module`] returns).
    pub(crate) text: String,
    /// Labels with their sorts, in first-occurrence order.
    pub(crate) labels: Vec<(Name, Sort)>,
    /// Scribble label → Rust struct name.
    pub(crate) label_types: BTreeMap<Name, String>,
    /// Per-role naming, in role declaration order.
    pub(crate) roles: Vec<RoleParts>,
}

/// Naming decisions for one role's session types.
pub(crate) struct RoleParts {
    /// Rust type name of the role struct.
    pub(crate) role_ty: String,
    /// Name of the `{Role}Session` entry alias.
    pub(crate) entry_alias: String,
    /// Choice enum names, in pre-order of multi-branch nodes of the
    /// role's local type (the traversal order of `emit_type`).
    pub(crate) choice_names: Vec<String>,
}

/// Emits the complete generated Rust module.
pub fn rust_module(analysis: &Analysis) -> Result<String, Error> {
    Ok(module_parts(analysis)?.text)
}

/// Builds the module text together with its naming tables (in-process
/// carrier: the `roles!` channel mesh).
pub(crate) fn module_parts(analysis: &Analysis) -> Result<ModuleParts, Error> {
    module_parts_with(analysis, false)
}

/// Builds the module text together with its naming tables. With
/// `distributed` set, the module targets the framed socket transport:
/// the wire-format enum derives [`Wire`](rumpsteak::wire::Wire), role
/// structs carry one [`NetLink`](rumpsteak::net::NetLink) per peer
/// instead of an in-process channel, and each role gets a
/// `connect_<role>` constructor that binds its topology address,
/// registers the verified k-MC bounds as socket send windows and dials
/// or accepts every peer.
pub(crate) fn module_parts_with(
    analysis: &Analysis,
    distributed: bool,
) -> Result<ModuleParts, Error> {
    let protocol = &analysis.protocol;

    // ---- name tables -------------------------------------------------
    // Reserved up front: the wire-format enum, the `rumpsteak` items the
    // module imports, and prelude types a payload struct could shadow
    // (`pub struct String(pub String)` would otherwise emit). User-named
    // roles/labels hitting these surface as NameCollision instead of
    // non-compiling output.
    let mut used: HashSet<String> = [
        "Label", "Branch", "End", "Receive", "Select", "Send", "String", "Option", "Vec", "Box",
        "Result",
    ]
    .map(str::to_owned)
    .into_iter()
    .collect();

    let mut role_types: BTreeMap<Name, String> = BTreeMap::new();
    for role in &protocol.roles {
        let ty = pascal_case(role.as_str());
        if !used.insert(ty.clone()) {
            return Err(Error::NameCollision {
                kind: "role",
                name: ty,
            });
        }
        role_types.insert(role.clone(), ty);
    }

    let labels = collect_labels(&protocol.body)?;
    let mut label_types: BTreeMap<Name, String> = BTreeMap::new();
    for (label, _) in &labels {
        let ty = pascal_case(label.as_str());
        if !used.insert(ty.clone()) {
            return Err(Error::NameCollision {
                kind: "label",
                name: ty,
            });
        }
        label_types.insert(label.clone(), ty);
    }

    // ---- per-role session types --------------------------------------
    let mut imports = Imports::default();
    let mut sessions: Vec<String> = Vec::new();
    let mut choices: Vec<ChoiceDecl> = Vec::new();
    let mut role_parts: Vec<RoleParts> = Vec::new();
    for (role, local) in &analysis.locals {
        let role_ty = role_types[role].clone();
        let entry_alias = alloc(&mut used, &format!("{role_ty}Session"));
        let mut gen = RoleGen {
            role_ty: &role_ty,
            role_types: &role_types,
            label_types: &label_types,
            used: &mut used,
            structs: Vec::new(),
            choices: Vec::new(),
            imports: &mut imports,
        };
        let entry = gen.emit_type(local, &mut Vec::new());
        sessions.push(format!("    type {entry_alias}<'q> = {entry};"));
        for (name, inner) in gen.structs {
            sessions.push(format!("    struct {name}<'q> for {role_ty} = {inner};"));
        }
        role_parts.push(RoleParts {
            role_ty: role_ty.clone(),
            entry_alias,
            choice_names: gen.choices.iter().map(|c| c.name.clone()).collect(),
        });
        choices.extend(gen.choices);
    }

    // ---- assembly ----------------------------------------------------
    let mut out = String::new();
    out.push_str(&format!(
        "// Generated by `rumpsteak-gen` from global protocol `{}`. Do not edit.\n//\n// Projections:\n",
        protocol.name
    ));
    for (role, local) in &analysis.locals {
        out.push_str(&format!("//   {role}: {local}\n"));
    }
    out.push('\n');
    if distributed {
        // Before the grouped `rumpsteak::{...}` import: rustfmt orders a
        // plain `net` segment ahead of a brace group.
        out.push_str("use rumpsteak::net::{NetLink, RemoteMesh, Topology};\n");
    }
    out.push_str(&imports.render(!choices.is_empty(), distributed));
    out.push('\n');

    for (label, sort) in &labels {
        let ty = &label_types[label];
        match payload(sort) {
            None => out.push_str(&format!("/// Label `{label}`.\npub struct {ty};\n")),
            Some((rust_ty, _)) => out.push_str(&format!(
                "/// Label `{label}` carrying `{rust_ty}`.\npub struct {ty}(pub {rust_ty});\n"
            )),
        }
    }
    out.push('\n');

    if distributed {
        // `wire` derives the byte format alongside the usual impls, so
        // the same enum crosses process boundaries.
        out.push_str("messages! {\n    wire enum Label {\n");
    } else {
        out.push_str("messages! {\n    enum Label {\n");
    }
    for (label, sort) in &labels {
        let ty = &label_types[label];
        match payload(sort) {
            None => out.push_str(&format!("        {ty}({ty}),\n")),
            Some((_, suffix)) => out.push_str(&format!("        {ty}({ty}): {suffix},\n")),
        }
    }
    out.push_str("    }\n}\n\n");

    // Statically verified per-channel bounds: when the k-MC exploration
    // is exhaustive, its observed maxima are tight, so connection setup
    // can register them for runtime watermark checking (telemetry builds
    // assert `observed_depth <= k`) — and, distributed, as each link's
    // socket send window. Omitted when no exhaustive bound is found — an
    // unverified number must never be registered.
    let bounds = crate::verified_channel_bounds(analysis);
    // Per-role `(field name, peer type)` link fields, in declaration
    // order, shared by both carriers.
    let mut role_fields: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for (role, local) in &analysis.locals {
        let peers = local.peers();
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut field_names: HashSet<String> = HashSet::new();
        for peer in protocol.roles.iter().filter(|r| peers.contains(*r)) {
            let field = snake_case(peer.as_str());
            if !field_names.insert(field.clone()) {
                return Err(Error::NameCollision {
                    kind: "role field",
                    name: field,
                });
            }
            fields.push((field, role_types[peer].clone()));
        }
        role_fields.push((role_types[role].clone(), fields));
    }

    if distributed {
        out.push_str(
            "// ---- distributed roles ----------------------------------------------\n\
             // One struct per role holding a framed socket link per peer — the same\n\
             // shape `roles!` generates, with `NetLink` as the carrier — and one\n\
             // `connect_<role>` constructor per role: it binds the role's topology\n\
             // address, registers the statically verified k-MC bounds (each link's\n\
             // socket send window is capped at its direction's bound), then dials\n\
             // or accepts each peer.\n",
        );
        for (role_ty, fields) in &role_fields {
            out.push('\n');
            out.push_str(&format!(
                "/// Distributed role `{role_ty}`: one framed socket link per peer.\n\
                 pub struct {role_ty} {{\n"
            ));
            for (field, _) in fields {
                out.push_str(&format!("    {field}: NetLink<Label>,\n"));
            }
            out.push_str("}\n\n");
            out.push_str(&format!(
                "impl rumpsteak::Role for {role_ty} {{\n\
                 \x20   type Message = Label;\n\
                 \x20   fn name() -> &'static str {{\n\
                 \x20       \"{role_ty}\"\n\
                 \x20   }}\n\
                 }}\n"
            ));
            for (field, peer_ty) in fields {
                out.push_str(&format!(
                    "\nimpl rumpsteak::Route<{peer_ty}> for {role_ty} {{\n\
                     \x20   type Link = NetLink<Label>;\n\
                     \x20   fn route(&mut self) -> &mut Self::Link {{\n\
                     \x20       &mut self.{field}\n\
                     \x20   }}\n\
                     }}\n"
                ));
            }
            let stem = fn_stem(role_ty);
            out.push_str(&format!(
                "\n/// Connects role `{role_ty}` to its peers as laid out in `topology`.\n\
                 pub fn connect_{stem}(topology: Topology) -> std::io::Result<{role_ty}> {{\n"
            ));
            if fields.is_empty() {
                out.push_str(&format!(
                    "    let _mesh = RemoteMesh::<Label>::bind(topology, \"{role_ty}\")?;\n\
                     \x20   Ok({role_ty} {{}})\n}}\n"
                ));
                continue;
            }
            out.push_str(&format!(
                "    let mut mesh = RemoteMesh::<Label>::bind(topology, \"{role_ty}\")?;\n"
            ));
            for (from, to, depth) in &bounds {
                let from_ty = &role_types[from];
                let to_ty = &role_types[to];
                if from_ty == role_ty || to_ty == role_ty {
                    out.push_str(&format!(
                        "    mesh.set_bound(\"{from_ty}\", \"{to_ty}\", {depth});\n"
                    ));
                }
            }
            for (field, peer_ty) in fields {
                out.push_str(&format!("    let {field} = mesh.link(\"{peer_ty}\")?;\n"));
            }
            let names: Vec<&str> = fields.iter().map(|(field, _)| field.as_str()).collect();
            out.push_str(&format!(
                "    Ok({role_ty} {{ {} }})\n}}\n",
                names.join(", ")
            ));
        }
        out.push('\n');
    } else {
        out.push_str("roles! {\n    message Label;\n");
        if !bounds.is_empty() {
            let rendered: Vec<String> = bounds
                .iter()
                .map(|(from, to, depth)| {
                    format!("{} -> {}: {depth}", role_types[from], role_types[to])
                })
                .collect();
            out.push_str(&format!("    bounds {{ {} }};\n", rendered.join(", ")));
        }
        for (role_ty, fields) in &role_fields {
            let rendered: Vec<String> = fields
                .iter()
                .map(|(field, peer_ty)| format!("{field}: {peer_ty}"))
                .collect();
            let body = if rendered.is_empty() {
                "{}".to_owned()
            } else {
                format!("{{ {} }}", rendered.join(", "))
            };
            out.push_str(&format!("    {role_ty} {body},\n"));
        }
        out.push_str("}\n\n");
    }

    out.push_str("session! {\n");
    for line in &sessions {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("}\n");

    for choice in &choices {
        out.push_str(&format!(
            "\nchoice! {{\n    enum {}<'q> for {} {{\n",
            choice.name, choice.role_ty
        ));
        for (label_ty, continuation) in &choice.variants {
            out.push_str(&format!(
                "        {label_ty}({label_ty}) => {continuation},\n"
            ));
        }
        out.push_str("    }\n}\n");
    }

    Ok(ModuleParts {
        text: out,
        labels,
        label_types,
        roles: role_parts,
    })
}

/// All labels with their sorts, in pre-order of first occurrence.
fn collect_labels(global: &GlobalType) -> Result<Vec<(Name, Sort)>, Error> {
    fn walk(global: &GlobalType, out: &mut Vec<(Name, Sort)>) -> Result<(), Error> {
        match global {
            GlobalType::End | GlobalType::Var(_) => Ok(()),
            GlobalType::Rec { body, .. } => walk(body, out),
            GlobalType::Comm { branches, .. } => {
                for branch in branches {
                    match out.iter().find(|(label, _)| label == &branch.label) {
                        None => out.push((branch.label.clone(), branch.sort.clone())),
                        Some((_, sort)) if sort == &branch.sort => {}
                        Some((_, sort)) => {
                            return Err(Error::LabelSortConflict {
                                label: branch.label.clone(),
                                first: sort.clone(),
                                second: branch.sort.clone(),
                            })
                        }
                    }
                    walk(&branch.continuation, out)?;
                }
                Ok(())
            }
        }
    }
    let mut labels = Vec::new();
    walk(global, &mut labels)?;
    Ok(labels)
}

/// Maps a sort to its Rust payload type and `messages!` sort suffix;
/// `None` for unit (no payload).
fn payload(sort: &Sort) -> Option<(String, String)> {
    match sort {
        Sort::Unit => None,
        Sort::I32 => Some(("i32".into(), "i32".into())),
        Sort::U32 => Some(("u32".into(), "u32".into())),
        Sort::I64 => Some(("i64".into(), "i64".into())),
        Sort::U64 => Some(("u64".into(), "u64".into())),
        Sort::F64 => Some(("f64".into(), "f64".into())),
        Sort::Bool => Some(("bool".into(), "bool".into())),
        Sort::Str => Some(("String".into(), "str".into())),
        Sort::Custom(name) => Some((name.to_string(), name.to_string())),
    }
}

/// Derives the `connect_<x>` / `run_<x>` function stem from a role type
/// name.
pub(crate) fn fn_stem(role_ty: &str) -> String {
    let snake = snake_case(role_ty);
    snake
        .trim_start_matches("r#")
        .trim_end_matches('_')
        .to_owned()
}

/// Claims `base` in `used`, appending the smallest numeric suffix ≥ 2 on
/// collision. Deterministic: allocation order is traversal order.
fn alloc(used: &mut HashSet<String>, base: &str) -> String {
    if used.insert(base.to_owned()) {
        return base.to_owned();
    }
    let mut n = 2usize;
    loop {
        let candidate = format!("{base}{n}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
        n += 1;
    }
}

/// Which `rumpsteak` items the generated module references.
#[derive(Default)]
struct Imports {
    send: bool,
    receive: bool,
    select: bool,
    branch: bool,
    end: bool,
}

impl Imports {
    fn render(&self, any_choice: bool, distributed: bool) -> String {
        let mut items: Vec<&str> = Vec::new();
        if any_choice {
            items.push("choice");
        }
        // Distributed modules declare their role structs by hand, so the
        // `roles!` macro is not imported.
        if distributed {
            items.extend(["messages", "session"]);
        } else {
            items.extend(["messages", "roles", "session"]);
        }
        for (flag, item) in [
            (self.branch, "Branch"),
            (self.end, "End"),
            (self.receive, "Receive"),
            (self.select, "Select"),
            (self.send, "Send"),
        ] {
            if flag {
                items.push(item);
            }
        }
        format!("use rumpsteak::{{{}}};\n", items.join(", "))
    }
}

/// One `choice!` declaration.
struct ChoiceDecl {
    name: String,
    role_ty: String,
    /// `(label type, continuation type)` per variant.
    variants: Vec<(String, String)>,
}

/// Per-role emission state.
struct RoleGen<'a> {
    role_ty: &'a str,
    role_types: &'a BTreeMap<Name, String>,
    label_types: &'a BTreeMap<Name, String>,
    used: &'a mut HashSet<String>,
    /// `(struct name, inner type)` per `rec` binder, outer-first.
    structs: Vec<(String, String)>,
    choices: Vec<ChoiceDecl>,
    imports: &'a mut Imports,
}

impl RoleGen<'_> {
    /// Renders `local` as a session type expression, accumulating any
    /// recursion structs and choice enums it needs. `rec_env` maps bound
    /// recursion variables to their struct names (innermost last).
    fn emit_type(&mut self, local: &LocalType, rec_env: &mut Vec<(Name, String)>) -> String {
        let role_ty = self.role_ty;
        match local {
            LocalType::End => {
                self.imports.end = true;
                format!("End<'q, {role_ty}>")
            }
            LocalType::Var(var) => {
                let name = rec_env
                    .iter()
                    .rev()
                    .find(|(v, _)| v == var)
                    .map(|(_, name)| name.clone())
                    .expect("projection output has no free variables");
                format!("{name}<'q>")
            }
            LocalType::Rec { var, body } => {
                let name = alloc(
                    self.used,
                    &format!("{role_ty}{}", pascal_case(var.as_str())),
                );
                // Reserve the slot so nested binders appear after their
                // parent, then fill it once the body is rendered.
                let slot = self.structs.len();
                self.structs.push((name.clone(), String::new()));
                rec_env.push((var.clone(), name.clone()));
                let inner = self.emit_type(body, rec_env);
                rec_env.pop();
                self.structs[slot].1 = inner;
                format!("{name}<'q>")
            }
            LocalType::Select { peer, branches } | LocalType::Branch { peer, branches } => {
                let is_select = matches!(local, LocalType::Select { .. });
                let peer_ty = self.role_types[peer].clone();
                if branches.len() == 1 {
                    let branch = &branches[0];
                    let label_ty = self.label_types[&branch.label].clone();
                    let continuation = self.emit_type(&branch.continuation, rec_env);
                    let primitive = if is_select {
                        self.imports.send = true;
                        "Send"
                    } else {
                        self.imports.receive = true;
                        "Receive"
                    };
                    format!("{primitive}<'q, {role_ty}, {peer_ty}, {label_ty}, {continuation}>")
                } else {
                    let name = alloc(self.used, &format!("{role_ty}Choice"));
                    let slot = self.choices.len();
                    self.choices.push(ChoiceDecl {
                        name: name.clone(),
                        role_ty: role_ty.to_owned(),
                        variants: Vec::new(),
                    });
                    let variants = branches
                        .iter()
                        .map(|branch| {
                            (
                                self.label_types[&branch.label].clone(),
                                self.emit_type(&branch.continuation, rec_env),
                            )
                        })
                        .collect();
                    self.choices[slot].variants = variants;
                    let primitive = if is_select {
                        self.imports.select = true;
                        "Select"
                    } else {
                        self.imports.branch = true;
                        "Branch"
                    };
                    format!("{primitive}<'q, {role_ty}, {peer_ty}, {name}<'q>>")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyse;

    use super::*;

    #[test]
    fn streaming_module_shape() {
        let analysis = analyse(
            r#"
            global protocol Streaming(role s, role t) {
                rec loop {
                    ready() from t to s;
                    choice at s {
                        value(i32) from s to t;
                        continue loop;
                    } or {
                        stop() from s to t;
                    }
                }
            }
            "#,
        )
        .unwrap();
        let module = rust_module(&analysis).unwrap();
        assert!(module.contains("pub struct Ready;"));
        assert!(module.contains("bounds { S -> T: 1, T -> S: 1 };"));
        assert!(module.contains("pub struct Value(pub i32);"));
        assert!(module.contains("Value(Value): i32,"));
        assert!(module.contains("S { t: T },"));
        assert!(module.contains(
            "struct SLoop<'q> for S = Receive<'q, S, T, Ready, Select<'q, S, T, SChoice<'q>>>;"
        ));
        assert!(module.contains("type SSession<'q> = SLoop<'q>;"));
        assert!(module.contains("Stop(Stop) => End<'q, T>,"));
    }

    #[test]
    fn emission_is_deterministic() {
        let source = r#"
            global protocol P(role a, role b, role c) {
                rec l {
                    x(i32) from a to b;
                    choice at b {
                        y() from b to c;
                        ya() from b to a;
                        continue l;
                    } or {
                        z() from b to c;
                        za() from b to a;
                    }
                }
            }
        "#;
        let first = rust_module(&analyse(source).unwrap()).unwrap();
        let second = rust_module(&analyse(source).unwrap()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn labels_shadowing_imports_are_rejected() {
        // `send` would mangle to `Send`, colliding with the imported
        // rumpsteak primitive and producing non-compiling output.
        let analysis =
            analyse("global protocol P(role a, role b) { send(i32) from a to b; }").unwrap();
        assert!(matches!(
            rust_module(&analysis),
            Err(Error::NameCollision { kind: "label", .. })
        ));
        // `string` would shadow the prelude `String` its own payload uses.
        let analysis =
            analyse("global protocol P(role a, role b) { string(str) from a to b; }").unwrap();
        assert!(matches!(
            rust_module(&analysis),
            Err(Error::NameCollision { kind: "label", .. })
        ));
    }

    #[test]
    fn colliding_labels_are_rejected() {
        let analysis = analyse(
            "global protocol P(role a, role b) { my_label() from a to b; myLabel() from b to a; }",
        )
        .unwrap();
        assert!(matches!(
            rust_module(&analysis),
            Err(Error::NameCollision { kind: "label", .. })
        ));
    }

    #[test]
    fn conflicting_sorts_are_rejected() {
        let analysis = analyse(
            "global protocol P(role a, role b) { v(i32) from a to b; v(str) from b to a; }",
        )
        .unwrap();
        assert!(matches!(
            rust_module(&analysis),
            Err(Error::LabelSortConflict { .. })
        ));
    }

    #[test]
    fn uninvolved_role_gets_end_session() {
        let analysis =
            analyse("global protocol P(role a, role b, role c) { hi() from a to b; }").unwrap();
        let module = rust_module(&analysis).unwrap();
        assert!(module.contains("type CSession<'q> = End<'q, C>;"));
        assert!(module.contains("C {},"));
    }

    #[test]
    fn duplicate_rec_vars_get_numbered_structs() {
        // Two sequential `rec x` binders in the same role must not share a
        // struct name.
        let analysis = analyse(
            r#"
            global protocol P(role a, role b) {
                rec x {
                    choice at a {
                        go() from a to b;
                        continue x;
                    } or {
                        move_on() from a to b;
                        rec x {
                            choice at a {
                                again() from a to b;
                                continue x;
                            } or {
                                done() from a to b;
                            }
                        }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let module = rust_module(&analysis).unwrap();
        assert!(module.contains("struct AX<'q> for A"));
        assert!(module.contains("struct AX2<'q> for A"));
    }
}
