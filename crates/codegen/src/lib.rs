//! Scribble → Rust session-type code generation: the missing "generate"
//! step of the paper's top-down workflow (Fig 1a).
//!
//! [`analyse`] runs the theory pipeline — `scribble::parse` →
//! `projection::project` per role → `fsm::from_local` — and [`rust_module`]
//! emits a self-contained Rust module against the `rumpsteak` runtime:
//! message structs, the `messages!`/`roles!` mesh declarations, and one
//! session type per role (`session!` aliases and recursion structs, with
//! `choice!` enums for internal/external choices).
//!
//! All naming is deterministic (see [`naming`]): the same Scribble source
//! always produces byte-identical output, which is what the golden-file
//! tests pin.
//!
//! ```
//! let source = r#"
//!     global protocol Greet(role a, role b) {
//!         hello(i32) from a to b;
//!     }
//! "#;
//! let analysis = codegen::analyse(source).unwrap();
//! let module = codegen::rust_module(&analysis).unwrap();
//! assert!(module.contains("pub struct Hello(pub i32);"));
//! assert!(module.contains("type ASession<'q> = Send<'q, A, B, Hello, End<'q, A>>;"));
//! ```

pub mod naming;

mod emit;
mod skeleton;

use std::fmt;

use theory::fsm::{self, Fsm, FsmError};
use theory::projection::{self, ProjectionError};
use theory::scribble::{self, Bindings, Protocol, ScribbleError};
use theory::sort::Sort;
use theory::{LocalType, Name};

pub use emit::rust_module;
pub use skeleton::{rust_distributed_program, rust_program};

/// The protocol together with its per-role projections and FSMs.
///
/// Produced by [`analyse`]; consumed by every output format and by
/// [`check`].
pub struct Analysis {
    /// The parsed protocol.
    pub protocol: Protocol,
    /// Per-role projections, in role declaration order.
    pub locals: Vec<(Name, LocalType)>,
    /// Per-role FSMs, in role declaration order.
    pub fsms: Vec<Fsm>,
}

/// Errors across the whole generation pipeline.
#[derive(Debug)]
pub enum Error {
    /// Scribble parsing failed.
    Parse(ScribbleError),
    /// Projection onto `role` failed.
    Projection(Name, ProjectionError),
    /// FSM conversion for `role` failed.
    Fsm(Name, FsmError),
    /// One label is used with two different payload sorts; the shared
    /// wire-format enum needs a unique sort per label.
    LabelSortConflict {
        /// The conflicting label.
        label: Name,
        /// Sort of the first occurrence.
        first: Sort,
        /// Sort of the later, conflicting occurrence.
        second: Sort,
    },
    /// Two distinct Scribble identifiers mangle to the same Rust name.
    NameCollision {
        /// What kind of identifier collided (role, label, ...).
        kind: &'static str,
        /// The mangled Rust name.
        name: String,
    },
    /// The projected FSMs do not form a valid system.
    System(kmc::SystemError),
    /// `--check` found a k-MC violation.
    Violation(kmc::Violation),
    /// `--check` found a projection that is not a subtype of itself,
    /// indicating a broken FSM conversion.
    SubtypeSanity(Name),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Projection(role, e) => write!(f, "projection onto {role} failed: {e}"),
            Error::Fsm(role, e) => write!(f, "FSM conversion for {role} failed: {e}"),
            Error::LabelSortConflict {
                label,
                first,
                second,
            } => write!(
                f,
                "label {label} is used with conflicting sorts {first} and {second}"
            ),
            Error::NameCollision { kind, name } => {
                write!(
                    f,
                    "{kind} identifier maps to Rust name `{name}`, which is already taken \
                     (by another identifier or a reserved name)"
                )
            }
            Error::System(e) => write!(f, "projected FSMs form no valid system: {e}"),
            Error::Violation(v) => write!(f, "k-MC violation: {v}"),
            Error::SubtypeSanity(role) => {
                write!(f, "projection of {role} fails reflexive subtyping")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Runs parse → project → FSM conversion on Scribble source.
///
/// Parameterised protocols (role families with non-literal bounds) need
/// [`analyse_with`]; this entry point instantiates with no bindings.
pub fn analyse(source: &str) -> Result<Analysis, Error> {
    analyse_with(source, &[])
}

/// Like [`analyse`], but instantiates a parameterised protocol first:
/// each `(name, value)` pair binds one template parameter (the CLI's
/// `--param name=value`).
pub fn analyse_with(source: &str, params: &[(Name, i64)]) -> Result<Analysis, Error> {
    let template = scribble::parse_template(source).map_err(Error::Parse)?;
    let bindings: Bindings = params.iter().cloned().collect();
    let protocol = template.instantiate(&bindings).map_err(Error::Parse)?;
    let mut locals = Vec::with_capacity(protocol.roles.len());
    let mut fsms = Vec::with_capacity(protocol.roles.len());
    for role in &protocol.roles {
        let local = projection::project(&protocol.body, role)
            .map_err(|e| Error::Projection(role.clone(), e))?;
        let machine = fsm::from_local(role, &local).map_err(|e| Error::Fsm(role.clone(), e))?;
        locals.push((role.clone(), local));
        fsms.push(machine);
    }
    Ok(Analysis {
        protocol,
        locals,
        fsms,
    })
}

/// The optimise pass (`rumpsteak-gen --optimise`): replaces every role's
/// projection with the best AMR reordering the optimiser can verify
/// against it, so emission — `rust_module`, `rust_program`, the listings
/// — generates code whose roles run the *optimised* local types.
///
/// Roles with no verified improvement keep their projection unchanged.
/// Returns one machine-readable [`optimiser::Report`] per role, in role
/// declaration order.
pub fn optimise(
    analysis: &mut Analysis,
    config: &optimiser::Config,
) -> Result<Vec<optimiser::Report>, Error> {
    let mut reports = Vec::with_capacity(analysis.locals.len());
    for ((role, local), machine) in analysis.locals.iter_mut().zip(&mut analysis.fsms) {
        let outcome =
            optimiser::optimise(role, local, config).map_err(|e| Error::Fsm(role.clone(), e))?;
        *local = outcome.best_local().clone();
        *machine = outcome.best_fsm().clone();
        reports.push(outcome.report());
    }
    Ok(reports)
}

/// Renders every role's FSM as Graphviz DOT, one digraph per role.
pub fn dot_listing(analysis: &Analysis) -> String {
    analysis
        .fsms
        .iter()
        .map(theory::dot::to_dot)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders the projected system as `role: local type` lines — the input
/// format of the `kmc` and `subtype` command-line tools.
pub fn fsm_listing(analysis: &Analysis) -> String {
    let mut out = format!("# protocol {}\n", analysis.protocol.name);
    for (role, local) in &analysis.locals {
        out.push_str(&format!("{role}: {local}\n"));
    }
    out
}

/// Verifies the projected system before emission: k-MC with channel bound
/// `k`, plus a reflexive-subtyping sanity pass over every projected FSM.
pub fn check(analysis: &Analysis, k: usize) -> Result<kmc::Report, Error> {
    for machine in &analysis.fsms {
        if !subtyping::is_subtype(machine, machine, 2) {
            return Err(Error::SubtypeSanity(machine.role.clone()));
        }
    }
    let system = kmc::System::new(analysis.fsms.clone()).map_err(Error::System)?;
    kmc::check(&system, k).map_err(Error::Violation)
}

/// The exhaustively verified per-channel depth bounds of the projected
/// system, as `(from, to, max_depth)` triples in channel-index order —
/// the payload of the `bounds { ... }` clause the emitter writes into
/// generated `roles!` declarations.
///
/// Tries k-MC with increasing `k` until the exploration is exhaustive
/// (every send was enabled within the bound), at which point the observed
/// maxima are tight static bounds. Returns an empty vector if the system
/// is invalid, unsafe, or not exhaustively checkable within `k <=`
/// [`MAX_BOUND_SEARCH`] — emission then simply omits the clause rather
/// than registering an unverified bound.
pub fn verified_channel_bounds(analysis: &Analysis) -> Vec<(Name, Name, usize)> {
    let Ok(system) = kmc::System::new(analysis.fsms.clone()) else {
        return Vec::new();
    };
    for k in 1..=MAX_BOUND_SEARCH {
        match kmc::check(&system, k) {
            Ok(report) if report.exhaustive => {
                return report
                    .channel_bounds(&system)
                    .into_iter()
                    .map(|(from, to, depth)| (from.clone(), to.clone(), depth))
                    .collect();
            }
            Ok(_) => continue,
            Err(_) => return Vec::new(),
        }
    }
    Vec::new()
}

/// Largest channel bound [`verified_channel_bounds`] will try before
/// giving up; real protocols in the corpus are exhaustive well below it.
pub const MAX_BOUND_SEARCH: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    const STREAMING: &str = r#"
        global protocol Streaming(role s, role t) {
            rec loop {
                ready() from t to s;
                choice at s {
                    value(i32) from s to t;
                    continue loop;
                } or {
                    stop() from s to t;
                }
            }
        }
    "#;

    #[test]
    fn analyse_streaming() {
        let analysis = analyse(STREAMING).unwrap();
        assert_eq!(analysis.protocol.roles.len(), 2);
        assert_eq!(analysis.fsms[0].role, Name::from("s"));
        assert_eq!(analysis.fsms[0].len(), 3);
    }

    #[test]
    fn check_accepts_streaming() {
        let analysis = analyse(STREAMING).unwrap();
        let report = check(&analysis, 2).unwrap();
        assert!(report.configurations > 0);
    }

    #[test]
    fn check_rejects_unprojectable() {
        // c must act differently on a choice it cannot observe.
        let bad = r#"
            global protocol Bad(role a, role b, role c) {
                choice at a {
                    l1() from a to b;
                    m1() from c to b;
                } or {
                    l2() from a to b;
                    m2() from c to b;
                }
            }
        "#;
        assert!(matches!(analyse(bad), Err(Error::Projection(..))));
    }

    #[test]
    fn check_surfaces_kmc_violations() {
        // Projection is sound, so no Scribble input can produce an unsafe
        // system through `analyse`; cover the Violation branch by handing
        // `check` a deliberately deadlocking pair of machines (both
        // receive first).
        let protocol =
            scribble::parse("global protocol P(role a, role b) { hi() from a to b; }").unwrap();
        let a = fsm::from_local(&"a".into(), &theory::local::parse("b?x.end").unwrap()).unwrap();
        let b = fsm::from_local(&"b".into(), &theory::local::parse("a?y.end").unwrap()).unwrap();
        let analysis = Analysis {
            protocol,
            locals: Vec::new(),
            fsms: vec![a, b],
        };
        assert!(matches!(
            check(&analysis, 2),
            Err(Error::Violation(kmc::Violation::Deadlock(_)))
        ));
    }

    #[test]
    fn optimise_pass_keeps_locals_and_fsms_in_sync() {
        let mut analysis = analyse(STREAMING).unwrap();
        let reports = optimise(&mut analysis, &optimiser::Config::with_depth(1)).unwrap();
        // The source's value/stop choice hoists above its ready receive.
        assert!(reports[0].improved());
        for ((role, local), machine) in analysis.locals.iter().zip(&analysis.fsms) {
            assert_eq!(&fsm::from_local(role, local).unwrap(), machine);
        }
        // The optimised system is still verifiable end to end.
        check(&analysis, 2).unwrap();
    }

    #[test]
    fn optimise_pass_changes_emitted_sessions() {
        let mut optimised = analyse(STREAMING).unwrap();
        optimise(&mut optimised, &optimiser::Config::with_depth(1)).unwrap();
        let plain = rust_module(&analyse(STREAMING).unwrap()).unwrap();
        let optimised = rust_module(&optimised).unwrap();
        assert_ne!(plain, optimised);
        // Projected: s receives Ready, then selects. Optimised: the loop
        // entry point is the selection itself.
        assert!(plain.contains(
            "struct SLoop<'q> for S = Receive<'q, S, T, Ready, Select<'q, S, T, SChoice<'q>>>;"
        ));
        assert!(optimised.contains("struct SLoop<'q> for S = Select<'q, S, T, SChoice<'q>>;"));
    }

    #[test]
    fn fsm_listing_is_kmc_input() {
        let analysis = analyse(STREAMING).unwrap();
        let listing = fsm_listing(&analysis);
        assert!(listing.contains("s: rec loop.t?ready."));
        assert!(listing.contains("t: rec loop.s!ready."));
        // The listing round-trips through the kmc system parser.
        let specs: Vec<(&str, &str)> = listing
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(|l| l.split_once(':').unwrap())
            .map(|(r, b)| (r.trim(), b.trim()))
            .collect();
        let system = kmc::system_from_locals(&specs).unwrap();
        assert!(kmc::check(&system, 2).is_ok());
    }

    #[test]
    fn dot_listing_has_one_digraph_per_role() {
        let analysis = analyse(STREAMING).unwrap();
        let dot = dot_listing(&analysis);
        assert_eq!(dot.matches("digraph").count(), 2);
    }
}
