//! Process-skeleton emission: `rumpsteak-gen --skeleton`.
//!
//! [`rust_program`] extends [`rust_module`](crate::rust_module) into a
//! complete runnable program: after the generated declarations it emits
//! one `async fn run_<role>` per role driving that role's session through
//! `try_session` (send/receive calls, `choice!` match arms, labelled
//! loops for recursion), plus a `fn main` that connects the mesh, spawns
//! every role on the executor and joins them.
//!
//! The skeleton is *default logic*, meant to be edited: payloads are sent
//! as `Default::default()`, received payloads are discarded, and internal
//! choices loop for [`ROUNDS`] iterations before taking the first branch
//! that leads out of the loop. A protocol whose internal choices never
//! terminate generates a skeleton that runs forever — just like the
//! protocol it implements.
//!
//! [`ROUNDS`]: rust_program

use std::collections::{BTreeMap, HashMap};

use theory::local::LocalType;
use theory::sort::Sort;
use theory::Name;

use crate::emit::{fn_stem, module_parts_with, ModuleParts};
use crate::{Analysis, Error};

/// Emits a complete runnable program: the generated module followed by
/// per-role process skeletons and a `main` wiring them together.
pub fn rust_program(analysis: &Analysis) -> Result<String, Error> {
    program(analysis, false)
}

/// Emits a complete runnable *distributed* program: the generated module
/// targets the framed socket transport (wire-format labels, `NetLink`
/// role structs, per-role `connect_*` constructors), and `main`
/// dispatches on `argv` — `<ROLE> <TOPOLOGY-FILE>` — so one binary
/// serves every role, one OS process each.
pub fn rust_distributed_program(analysis: &Analysis) -> Result<String, Error> {
    program(analysis, true)
}

fn program(analysis: &Analysis, distributed: bool) -> Result<String, Error> {
    let parts = module_parts_with(analysis, distributed)?;
    let label_sorts: BTreeMap<Name, Sort> = parts.labels.iter().cloned().collect();

    let mut uses_into_session = false;
    let mut fns = Vec::new();
    for ((_, local), role_parts) in analysis.locals.iter().zip(&parts.roles) {
        let (text, rec_used) = role_fn(local, role_parts, &parts, &label_sorts);
        uses_into_session |= rec_used;
        fns.push(text);
    }

    let mut out = parts.text.clone();
    out.push('\n');
    if uses_into_session {
        out.push_str("use rumpsteak::{try_session, IntoSession};\n");
    } else {
        out.push_str("use rumpsteak::try_session;\n");
    }
    out.push_str(
        "\n// ---- process skeletons ----------------------------------------------\n\
         // Default logic, meant to be edited: payloads are `Default::default()`,\n\
         // received payloads are discarded, and internal choices loop `ROUNDS`\n\
         // times before taking a branch that leaves the loop.\n\n\
         /// Iterations each internal choice performs before choosing an exit.\n\
         pub const ROUNDS: usize = 100;\n",
    );
    for text in &fns {
        out.push('\n');
        out.push_str(text);
    }
    out.push('\n');
    if distributed {
        out.push_str(&emit_distributed_main(analysis, &parts));
    } else {
        out.push_str(&emit_main(analysis, &parts));
    }
    Ok(out)
}

/// Renders the skeleton function for one role; returns `(text, uses_rec)`.
fn role_fn(
    local: &LocalType,
    role_parts: &crate::emit::RoleParts,
    parts: &ModuleParts,
    label_sorts: &BTreeMap<Name, Sort>,
) -> (String, bool) {
    let mut gen = SkelGen {
        label_types: &parts.label_types,
        label_sorts,
        choice_names: assign_choice_names(local, &role_parts.choice_names),
        out: String::new(),
        indent: 2,
        rec_counter: 0,
        rec_env: Vec::new(),
        uses_rounds: false,
    };
    gen.emit(local, "s", true);
    let body = std::mem::take(&mut gen.out);

    let role_ty = &role_parts.role_ty;
    let entry = &role_parts.entry_alias;
    let fn_name = fn_name(role_ty);
    let mut text = format!(
        "/// Skeleton process for role `{role_ty}`: drives `{entry}` to completion.\n\
         pub async fn run_{fn_name}(role: &mut {role_ty}) -> rumpsteak::Result<()> {{\n\
         \x20   try_session(role, |s: {entry}<'_>| async move {{\n"
    );
    if gen.uses_rounds {
        text.push_str("        let mut rounds = ROUNDS;\n");
    }
    text.push_str(&body);
    text.push_str("    })\n    .await\n}\n");
    (text, gen.rec_counter > 0)
}

/// Renders the generated `fn main`.
fn emit_main(analysis: &Analysis, parts: &ModuleParts) -> String {
    let vars: Vec<String> = parts.roles.iter().map(|r| fn_name(&r.role_ty)).collect();
    let mut out =
        String::from("fn main() {\n    let rt = executor::Runtime::with_default_threads();\n");
    if vars.len() == 1 {
        out.push_str(&format!("    let mut {} = connect();\n", vars[0]));
    } else {
        let list: Vec<String> = vars.iter().map(|v| format!("mut {v}")).collect();
        out.push_str(&format!("    let ({}) = connect();\n", list.join(", ")));
    }
    out.push_str("    let handles = [\n");
    for var in &vars {
        out.push_str(&format!(
            "        rt.spawn(async move {{ run_{var}(&mut {var}).await }}),\n"
        ));
    }
    out.push_str("    ];\n    for handle in handles {\n");
    out.push_str(
        "        rt.block_on(handle).expect(\"task panicked\").expect(\"session failed\");\n",
    );
    out.push_str("    }\n");
    out.push_str(&format!(
        "    println!(\"protocol `{}`: all {} roles ran to completion\");\n}}\n",
        analysis.protocol.name,
        vars.len()
    ));
    out
}

/// Renders the distributed `fn main`: one process per role, selected by
/// `argv` and wired through the topology file.
fn emit_distributed_main(analysis: &Analysis, parts: &ModuleParts) -> String {
    let vars: Vec<String> = parts.roles.iter().map(|r| fn_stem(&r.role_ty)).collect();
    let names: Vec<&str> = parts.roles.iter().map(|r| r.role_ty.as_str()).collect();
    let roles_list = names.join(", ");
    let mut out = String::from("fn main() {\n    let mut args = std::env::args().skip(1);\n");
    out.push_str(&format!(
        "    let (role, topology) = match (args.next(), args.next()) {{\n\
         \x20       (Some(role), Some(topology)) => (role, topology),\n\
         \x20       _ => {{\n\
         \x20           eprintln!(\"usage: <ROLE> <TOPOLOGY-FILE>  (roles: {roles_list})\");\n\
         \x20           std::process::exit(2);\n\
         \x20       }}\n\
         \x20   }};\n"
    ));
    out.push_str(
        "    let topology = Topology::from_file(&topology).unwrap_or_else(|error| {\n\
         \x20       eprintln!(\"error: cannot load topology: {error}\");\n\
         \x20       std::process::exit(2);\n\
         \x20   });\n\
         \x20   // Observability hooks, both inert unless the environment opts in:\n\
         \x20   // `RUMPSTEAK_METRICS=<addr>` serves GET /metrics for the whole run,\n\
         \x20   // `RUMPSTEAK_TRACE_OUT=<path>` writes this process's trace dump for\n\
         \x20   // `rumpsteak-trace --merge` after the session completes.\n\
         \x20   let metrics = std::env::var(\"RUMPSTEAK_METRICS\")\n\
         \x20       .ok()\n\
         \x20       .map(|addr| rumpsteak::telemetry::serve::start(&addr).expect(\"start metrics endpoint\"));\n\
         \x20   let rt = executor::Runtime::with_default_threads();\n\
         \x20   match role.as_str() {\n",
    );
    for (var, name) in vars.iter().zip(&names) {
        out.push_str(&format!(
            "        \"{name}\" => {{\n\
             \x20           let mut {var} = connect_{var}(topology).expect(\"connect role {name}\");\n\
             \x20           let handle = rt.spawn(async move {{ run_{var}(&mut {var}).await }});\n\
             \x20           rt.block_on(handle)\n\
             \x20               .expect(\"task panicked\")\n\
             \x20               .expect(\"session failed\");\n\
             \x20       }}\n"
        ));
    }
    out.push_str(&format!(
        "        other => {{\n\
         \x20           eprintln!(\"unknown role `{{other}}` (roles: {roles_list})\");\n\
         \x20           std::process::exit(2);\n\
         \x20       }}\n\
         \x20   }}\n"
    ));
    out.push_str(
        "    if let Ok(path) = std::env::var(\"RUMPSTEAK_TRACE_OUT\") {\n\
         \x20       std::fs::write(&path, rumpsteak::telemetry::trace::dump_text(&role))\n\
         \x20           .expect(\"write trace dump\");\n\
         \x20   }\n\
         \x20   drop(metrics);\n",
    );
    out.push_str(&format!(
        "    println!(\"role `{{role}}` of protocol `{}` ran to completion\");\n}}\n",
        analysis.protocol.name
    ));
    out
}

/// Derives the `run_<x>` / local-variable stem from a role type name.
fn fn_name(role_ty: &str) -> String {
    fn_stem(role_ty)
}

/// Maps every multi-branch node of `local` to its `choice!` enum name,
/// replaying the pre-order traversal `emit_type` used to allocate them.
fn assign_choice_names(local: &LocalType, names: &[String]) -> HashMap<*const LocalType, String> {
    fn go(
        local: &LocalType,
        names: &[String],
        counter: &mut usize,
        map: &mut HashMap<*const LocalType, String>,
    ) {
        match local {
            LocalType::End | LocalType::Var(_) => {}
            LocalType::Rec { body, .. } => go(body, names, counter, map),
            LocalType::Select { branches, .. } | LocalType::Branch { branches, .. } => {
                if branches.len() > 1 {
                    map.insert(local as *const _, names[*counter].clone());
                    *counter += 1;
                }
                for branch in branches {
                    go(&branch.continuation, names, counter, map);
                }
            }
        }
    }
    let mut map = HashMap::new();
    let mut counter = 0;
    go(local, names, &mut counter, &mut map);
    map
}

/// Whether `local` mentions a recursion variable bound *outside* it —
/// i.e. whether, as a choice continuation, it loops back.
fn has_free_var(local: &LocalType) -> bool {
    fn go<'t>(local: &'t LocalType, bound: &mut Vec<&'t Name>) -> bool {
        match local {
            LocalType::End => false,
            LocalType::Var(var) => !bound.contains(&var),
            LocalType::Rec { var, body } => {
                bound.push(var);
                let result = go(body, bound);
                bound.pop();
                result
            }
            LocalType::Select { branches, .. } | LocalType::Branch { branches, .. } => branches
                .iter()
                .any(|branch| go(&branch.continuation, bound)),
        }
    }
    go(local, &mut Vec::new())
}

/// Per-role skeleton emission state.
struct SkelGen<'a> {
    label_types: &'a BTreeMap<Name, String>,
    label_sorts: &'a BTreeMap<Name, Sort>,
    choice_names: HashMap<*const LocalType, String>,
    out: String,
    /// Current indent, in 4-space levels.
    indent: usize,
    rec_counter: usize,
    /// Recursion variable → id of its holder (`s{id}`) and label (`'l{id}`).
    rec_env: Vec<(Name, usize)>,
    uses_rounds: bool,
}

impl SkelGen<'_> {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// The expression constructing a label value to send.
    fn label_expr(&self, label: &Name) -> String {
        let ty = &self.label_types[label];
        match self.label_sorts[label] {
            Sort::Unit => ty.clone(),
            _ => format!("{ty}(Default::default())"),
        }
    }

    /// The irrefutable pattern matching a received label value.
    fn label_pat(&self, label: &Name) -> String {
        let ty = &self.label_types[label];
        match self.label_sorts[label] {
            Sort::Unit => ty.clone(),
            _ => format!("{ty}(_)"),
        }
    }

    /// Emits the statements driving `local`, with the current session
    /// value bound to `cur`. `tail` is true when we are in tail position
    /// of the `try_session` closure (so `Ok(...)` needs no `return`).
    fn emit(&mut self, local: &LocalType, cur: &str, tail: bool) {
        match local {
            LocalType::End => {
                if tail {
                    self.line(&format!("Ok(((), {cur}))"));
                } else {
                    self.line(&format!("return Ok(((), {cur}));"));
                }
            }
            LocalType::Var(var) => {
                let id = self
                    .rec_env
                    .iter()
                    .rev()
                    .find(|(v, _)| v == var)
                    .map(|(_, id)| *id)
                    .expect("projection output has no free variables");
                self.line(&format!("s{id} = {cur};"));
                self.line(&format!("continue 'l{id};"));
            }
            LocalType::Rec { var, body } => {
                self.rec_counter += 1;
                let id = self.rec_counter;
                self.line(&format!("let mut s{id} = {cur};"));
                self.line(&format!("'l{id}: loop {{"));
                self.indent += 1;
                self.line(&format!("let s = s{id}.into_session();"));
                self.rec_env.push((var.clone(), id));
                self.emit(body, "s", false);
                self.rec_env.pop();
                self.indent -= 1;
                self.line("}");
            }
            LocalType::Select { branches, .. } if branches.len() == 1 => {
                let branch = &branches[0];
                let expr = self.label_expr(&branch.label);
                self.line(&format!("let s = {cur}.send({expr}).await?;"));
                self.emit(&branch.continuation, "s", tail);
            }
            LocalType::Select { branches, .. } => {
                let looping = branches.iter().position(|b| has_free_var(&b.continuation));
                let exiting = branches.iter().position(|b| !has_free_var(&b.continuation));
                match (looping, exiting) {
                    (Some(lb), Some(eb)) => {
                        self.uses_rounds = true;
                        self.line("if rounds > 0 {");
                        self.indent += 1;
                        self.line("rounds -= 1;");
                        let expr = self.label_expr(&branches[lb].label);
                        self.line(&format!("let s = {cur}.select({expr}).await?;"));
                        self.emit(&branches[lb].continuation, "s", tail);
                        self.indent -= 1;
                        self.line("} else {");
                        self.indent += 1;
                        let expr = self.label_expr(&branches[eb].label);
                        self.line(&format!("let s = {cur}.select({expr}).await?;"));
                        self.emit(&branches[eb].continuation, "s", tail);
                        self.indent -= 1;
                        self.line("}");
                    }
                    _ => {
                        // All branches loop (or all exit): always take the
                        // first one.
                        let branch = &branches[0];
                        let expr = self.label_expr(&branch.label);
                        self.line(&format!("let s = {cur}.select({expr}).await?;"));
                        self.emit(&branch.continuation, "s", tail);
                    }
                }
            }
            LocalType::Branch { branches, .. } if branches.len() == 1 => {
                let branch = &branches[0];
                let pat = self.label_pat(&branch.label);
                self.line(&format!("let ({pat}, s) = {cur}.receive().await?;"));
                self.emit(&branch.continuation, "s", tail);
            }
            LocalType::Branch { branches, .. } => {
                let choice = self.choice_names[&(local as *const _)].clone();
                self.line(&format!("match {cur}.branch().await? {{"));
                self.indent += 1;
                for branch in branches {
                    let variant = self.label_types[&branch.label].clone();
                    let pat = self.label_pat(&branch.label);
                    self.line(&format!("{choice}::{variant}({pat}, s) => {{"));
                    self.indent += 1;
                    self.emit(&branch.continuation, "s", tail);
                    self.indent -= 1;
                    self.line("}");
                }
                self.indent -= 1;
                self.line("}");
            }
        }
    }
}
