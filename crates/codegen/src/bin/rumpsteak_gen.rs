//! `rumpsteak-gen` — generate Rust session-type APIs from Scribble.
//!
//! The top-down workflow of the paper (Fig 1a) as one command:
//!
//! ```text
//! rumpsteak-gen protocol.scr                      # Rust module to stdout
//! rumpsteak-gen protocol.scr --check --k 2        # verify before emitting
//! rumpsteak-gen protocol.scr --param n=4          # instantiate `role w[1..n]`
//! rumpsteak-gen protocol.scr --optimise --bound 2 # AMR-optimise projections
//! rumpsteak-gen protocol.scr --optimise --costs BENCH_fig6.json  # measured costs
//! rumpsteak-gen protocol.scr --skeleton           # runnable program skeleton
//! rumpsteak-gen protocol.scr --skeleton --distributed  # per-process program
//! rumpsteak-gen protocol.scr --format dot         # Graphviz FSMs
//! rumpsteak-gen protocol.scr --format fsm         # `role: local type` lines
//! rumpsteak-gen - < protocol.scr -o generated.rs  # stdin → file
//! ```
//!
//! Exit codes: 0 success, 1 verification or generation failure, 2 usage or
//! I/O error.

use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rumpsteak-gen [FILE | -] [options]

Generates Rust session-type declarations for the `rumpsteak` runtime from
a Scribble `global protocol`, running parse -> projection -> FSM
conversion (and optionally verification) on the way.

options:
    --format rust|dot|fsm   output format (default: rust)
                              rust  self-contained module of rumpsteak
                                    declarations
                              dot   one Graphviz digraph per projected FSM
                              fsm   `role: local type` lines, the input
                                    format of the kmc and subtype tools
    --param NAME=VALUE      bind one template parameter (repeatable);
                            required for each parameter of a protocol
                            declaring role families like `role w[1..n]`
    --skeleton              with the rust format, emit a complete runnable
                            program: the module plus one `async fn` per
                            role driving its session through `try_session`
                            and a `main` spawning every role
    --distributed           with --skeleton, target the framed socket
                            transport instead of in-process channels:
                            wire-format labels, one `NetLink` per peer,
                            per-role `connect_*` constructors shaped by
                            the verified k-MC bounds, and a `main`
                            dispatching on `<ROLE> <TOPOLOGY-FILE>` so
                            each role runs as its own OS process
    --optimise              run the AMR optimise pass: replace each role's
                            projection with the best asynchronous message
                            reordering verified against it by the sound
                            subtyping algorithm (roles with no verified
                            improvement are kept unchanged); all output
                            formats then describe the optimised types
    --bound N               unfold depth for --optimise: how many `rec`
                            unfoldings a send may be anticipated across
                            (pipeline depth; default: 1)
    --report FILE           with --optimise, write the machine-readable
                            optimisation report (one JSON object per
                            role) to FILE
    --costs FILE            with --optimise, rank candidates by measured
                            per-edge costs loaded from a bench artifact
                            (the `edge_costs` section of BENCH_fig6.json,
                            regenerated with `fig6 --json --edge-costs`);
                            without --costs a documented static default
                            table calibrated on the committed artifact is
                            used
    --check                 verify the system about to be emitted (the
                            optimised one under --optimise): k-MC
                            (deadlocks, reception errors, orphans) plus a
                            reflexive subtyping sanity pass
    --k N                   channel bound for --check (default: 2)
    -o, --output FILE       write output to FILE instead of stdout
    -h, --help              show this help";

enum Format {
    Rust,
    Dot,
    Fsm,
}

struct Options {
    input: Option<String>,
    format: Format,
    check: bool,
    skeleton: bool,
    distributed: bool,
    optimise: bool,
    bound: Option<usize>,
    report: Option<String>,
    costs: Option<String>,
    params: Vec<(theory::Name, i64)>,
    k: usize,
    output: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        input: None,
        format: Format::Rust,
        check: false,
        skeleton: false,
        distributed: false,
        optimise: false,
        bound: None,
        report: None,
        costs: None,
        params: Vec::new(),
        k: 2,
        output: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                options.format = match iter.next().map(String::as_str) {
                    Some("rust") => Format::Rust,
                    Some("dot") => Format::Dot,
                    Some("fsm") => Format::Fsm,
                    Some(other) => return Err(format!("unknown format `{other}`")),
                    None => return Err("--format requires rust|dot|fsm".into()),
                };
            }
            "--check" => options.check = true,
            "--skeleton" => options.skeleton = true,
            "--distributed" => options.distributed = true,
            "--optimise" => options.optimise = true,
            "--bound" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) => options.bound = Some(value),
                None => return Err("--bound requires a non-negative integer".into()),
            },
            "--report" => match iter.next() {
                Some(path) => options.report = Some(path.clone()),
                None => return Err("--report requires a path".into()),
            },
            "--costs" => match iter.next() {
                Some(path) => options.costs = Some(path.clone()),
                None => return Err("--costs requires a path".into()),
            },
            "--param" => match iter.next().and_then(|v| v.split_once('=')) {
                Some((name, value)) if !name.is_empty() => match value.parse() {
                    Ok(value) => options.params.push((theory::Name::from(name), value)),
                    Err(_) => {
                        return Err(format!("--param {name}=...: `{value}` is not an integer"))
                    }
                },
                _ => return Err("--param requires NAME=VALUE".into()),
            },
            "--k" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(value) if value >= 1 => options.k = value,
                _ => return Err("--k requires an integer >= 1".into()),
            },
            "-o" | "--output" => match iter.next() {
                Some(path) => options.output = Some(path.clone()),
                None => return Err("--output requires a path".into()),
            },
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option `{other}`"))
            }
            other if options.input.is_none() => options.input = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if options.skeleton && !matches!(options.format, Format::Rust) {
        return Err("--skeleton only applies to the rust format".into());
    }
    if options.distributed && !options.skeleton {
        return Err("--distributed requires --skeleton".into());
    }
    if options.report.is_some() && !options.optimise {
        return Err("--report requires --optimise".into());
    }
    if options.bound.is_some() && !options.optimise {
        return Err("--bound requires --optimise (--k sets the check's channel bound)".into());
    }
    if options.costs.is_some() && !options.optimise {
        return Err("--costs requires --optimise".into());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let source = match options.input.as_deref() {
        None | Some("-") => {
            let mut buffer = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buffer) {
                eprintln!("error: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            buffer
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let mut analysis = match codegen::analyse_with(&source, &options.params) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if options.optimise {
        // The CLI always ranks by an explicit cost model: the measured
        // profile when `--costs` names a bench artifact, the documented
        // static default table otherwise. (Library callers that want the
        // legacy receives-crossed proxy leave `Config.cost` unset.)
        let model = match options.costs.as_deref() {
            Some(path) => {
                let profile = match std::fs::read_to_string(path) {
                    Ok(profile) => profile,
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                match optimiser::CostModel::from_profile(&profile) {
                    Ok(model) => model,
                    Err(e) => {
                        eprintln!("error: --costs {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => optimiser::CostModel::default_table(),
        };
        let source_label = model.source();
        let config = optimiser::Config::with_depth(options.bound.unwrap_or(1)).with_cost(model);
        let reports = match codegen::optimise(&mut analysis, &config) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("error: optimise pass failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for report in &reports {
            match &report.best {
                Some(best) => eprintln!(
                    "optimised: {}: score {}{} ({}/{} candidates verified): {}",
                    report.role,
                    best.score,
                    match best.estimated_saving_ns {
                        Some(saving) => format!(", est. {saving:.1} ns saved ({source_label})"),
                        None => String::new(),
                    },
                    report.verified,
                    report.generated,
                    best.derivation.join(", "),
                ),
                None => eprintln!("optimised: {}: projection already optimal", report.role),
            }
        }
        if let Some(path) = options.report.as_deref() {
            let mut json = String::from("[\n");
            for (index, report) in reports.iter().enumerate() {
                json.push_str("  ");
                json.push_str(&report.to_json());
                json.push_str(if index + 1 < reports.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            json.push_str("]\n");
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if options.check {
        match codegen::check(&analysis, options.k) {
            Ok(report) => eprintln!(
                "verified: {}-MC safe, {} configurations, {} transitions{}",
                options.k,
                report.configurations,
                report.transitions,
                if report.exhaustive {
                    ""
                } else {
                    " (not k-exhaustive: verdict holds up to this bound)"
                }
            ),
            Err(e) => {
                eprintln!("error: verification failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let rendered = match options.format {
        Format::Rust => {
            let result = if options.distributed {
                codegen::rust_distributed_program(&analysis)
            } else if options.skeleton {
                codegen::rust_program(&analysis)
            } else {
                codegen::rust_module(&analysis)
            };
            match result {
                Ok(module) => module,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Format::Dot => codegen::dot_listing(&analysis),
        Format::Fsm => codegen::fsm_listing(&analysis),
    };

    match options.output.as_deref() {
        None => print!("{rendered}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
