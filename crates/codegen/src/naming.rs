//! Deterministic name mangling from Scribble identifiers to Rust ones.
//!
//! The generator must produce the same output for the same input on every
//! run, so every mapping here is a pure function of the input string:
//! no gensyms, no global counters.

/// Converts a Scribble identifier to an UpperCamelCase Rust type name.
///
/// Splits on `_` and on lower→upper case changes, then capitalises each
/// segment: `ready` → `Ready`, `double_buffering` → `DoubleBuffering`,
/// `myLabel` → `MyLabel`. A leading digit is prefixed with `N`.
pub fn pascal_case(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut upper_next = true;
    let mut previous_lower = false;
    for c in input.chars() {
        if c == '_' {
            upper_next = true;
            previous_lower = false;
            continue;
        }
        if c.is_uppercase() && previous_lower {
            upper_next = true;
        }
        if upper_next {
            out.extend(c.to_uppercase());
        } else {
            out.push(c);
        }
        upper_next = false;
        previous_lower = c.is_lowercase() || c.is_numeric();
    }
    if out.chars().next().is_some_and(|c| c.is_numeric()) {
        out.insert(0, 'N');
    }
    // `Self` is the one capitalised identifier rustc reserves, and it
    // cannot be raw-escaped either.
    if out == "Self" {
        out.push('_');
    }
    out
}

/// Converts a Scribble identifier to a snake_case Rust field name.
///
/// `K` → `k`, `MyRole` → `my_role`. Raw-identifier-escapes Rust keywords
/// (`loop` → `r#loop`) so any Scribble role name yields a valid field.
pub fn snake_case(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut previous_lower = false;
    for c in input.chars() {
        if c == '_' {
            out.push('_');
            previous_lower = false;
            continue;
        }
        if c.is_uppercase() {
            if previous_lower {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
        previous_lower = c.is_lowercase() || c.is_numeric();
    }
    if out.chars().next().is_some_and(|c| c.is_numeric()) {
        out.insert(0, 'n');
    }
    if matches!(out.as_str(), "self" | "super" | "crate" | "_") {
        // Path keywords cannot be raw identifiers; suffix instead.
        format!("{out}_")
    } else if is_keyword(&out) {
        format!("r#{out}")
    } else {
        out
    }
}

/// The Rust keywords a Scribble identifier could collide with.
fn is_keyword(ident: &str) -> bool {
    matches!(
        ident,
        "abstract"
            | "as"
            | "become"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
            | "box"
            | "do"
            | "final"
            | "macro"
            | "override"
            | "priv"
            | "try"
            | "typeof"
            | "unsized"
            | "virtual"
            | "yield"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pascal_case_variants() {
        assert_eq!(pascal_case("ready"), "Ready");
        assert_eq!(pascal_case("s"), "S");
        assert_eq!(pascal_case("double_buffering"), "DoubleBuffering");
        assert_eq!(pascal_case("myLabel"), "MyLabel");
        assert_eq!(pascal_case("Loop"), "Loop");
        assert_eq!(pascal_case("2phase"), "N2phase");
        assert_eq!(pascal_case("self"), "Self_");
    }

    #[test]
    fn snake_case_variants() {
        assert_eq!(snake_case("K"), "k");
        assert_eq!(snake_case("MyRole"), "my_role");
        assert_eq!(snake_case("s"), "s");
        assert_eq!(snake_case("loop"), "r#loop");
        assert_eq!(snake_case("2b"), "n2b");
        // Path keywords cannot be raw identifiers.
        assert_eq!(snake_case("self"), "self_");
        assert_eq!(snake_case("super"), "super_");
        assert_eq!(snake_case("crate"), "crate_");
        // Reserved-but-unused keywords still need escaping.
        assert_eq!(snake_case("abstract"), "r#abstract");
        assert_eq!(snake_case("become"), "r#become");
    }
}
