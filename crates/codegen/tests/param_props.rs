//! Property tests for parameterised protocols: every instantiation
//! `n ∈ 2..=8` of the committed templates must project for every family
//! member `w[i]` and pass the `--check` gate (k-MC deadlock/orphan/
//! reception-error freedom plus the reflexive-subtyping sanity pass).
//!
//! The ring family is exercised over the full `2..=8` (its k-MC space is
//! linear in `n`). The pipeline and all-to-all mesh grow their k-MC
//! configuration spaces exponentially — the pipeline at n = 8 alone is
//! 371k configurations (~17 s in release, far worse in the debug builds
//! `cargo test` uses) — so they are capped at 2..=6 and 2..=5
//! respectively, with the endpoints pinned exhaustively below.

use proptest::prelude::*;
use theory::Name;

const KBUFFERING: &str = include_str!("protocols/kbuffering.scr");
const PRING: &str = include_str!("protocols/pring.scr");
const PMESH: &str = include_str!("protocols/pmesh.scr");

/// Analyses `template` at parameter `n` and runs the `--check` gate,
/// asserting every family member projected.
fn check_instantiation(template: &str, what: &str, n: usize, k: usize) {
    let analysis = codegen::analyse_with(template, &[(Name::from("n"), n as i64)])
        .unwrap_or_else(|e| panic!("{what}: analyse failed at n={n}: {e}"));
    let members = analysis
        .protocol
        .roles
        .iter()
        .filter(|role| {
            role.as_str().starts_with('w') && role.as_str()[1..].chars().all(|c| c.is_ascii_digit())
        })
        .count();
    prop_assert_eq!(members, n, "{}: expected {} family members", what, n);
    let report = codegen::check(&analysis, k)
        .unwrap_or_else(|e| panic!("{what}: --check gate failed at n={n}: {e}"));
    prop_assert!(
        report.configurations > 0,
        "{}: empty exploration at n={}",
        what,
        n
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn pring_instantiations_are_deadlock_free(n in 2usize..=8) {
        check_instantiation(PRING, "pring", n, 2);
    }

    #[test]
    fn kbuffering_instantiations_are_deadlock_free(n in 2usize..=6) {
        check_instantiation(KBUFFERING, "kbuffering", n, 2);
    }

    #[test]
    fn pmesh_instantiations_are_deadlock_free(n in 2usize..=5) {
        check_instantiation(PMESH, "pmesh", n, 2);
    }
}

/// The shim's proptest samples the range; pin the endpoints exhaustively
/// so the boundary instantiations can never rotate out of coverage.
#[test]
fn boundary_instantiations_are_deadlock_free() {
    for n in [2, 8] {
        check_instantiation(PRING, "pring", n, 2);
    }
    for n in [2, 6] {
        check_instantiation(KBUFFERING, "kbuffering", n, 2);
    }
    for n in [2, 5] {
        check_instantiation(PMESH, "pmesh", n, 2);
    }
}
