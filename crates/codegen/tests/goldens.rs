//! Golden-file tests: the generated Rust for the paper's Streaming,
//! Double-Buffering and Ring protocols is pinned byte-for-byte.
//!
//! To regenerate after an intentional emitter change:
//!
//! ```text
//! cargo run -p codegen --bin rumpsteak-gen -- \
//!     crates/codegen/tests/protocols/<p>.scr -o crates/codegen/tests/goldens/<p>.rs
//! ```

use std::path::PathBuf;
use std::process::Command;

fn fixture(dir: &str, name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(dir)
        .join(name)
}

fn golden_matches(protocol: &str) {
    let source = std::fs::read_to_string(fixture("protocols", &format!("{protocol}.scr")))
        .expect("protocol fixture exists");
    let expected = std::fs::read_to_string(fixture("goldens", &format!("{protocol}.rs")))
        .expect("golden fixture exists");
    let analysis = codegen::analyse(&source).expect("protocol analyses");
    let module = codegen::rust_module(&analysis).expect("module generates");
    assert_eq!(
        module, expected,
        "generated output for `{protocol}` diverged from the golden file; \
         regenerate it if the change is intentional"
    );
}

#[test]
fn streaming_golden() {
    golden_matches("streaming");
}

#[test]
fn double_buffering_golden() {
    golden_matches("double_buffering");
}

#[test]
fn ring_golden() {
    golden_matches("ring");
}

#[test]
fn generation_is_deterministic_across_runs() {
    let source = std::fs::read_to_string(fixture("protocols", "ring.scr")).unwrap();
    let runs: Vec<String> = (0..3)
        .map(|_| codegen::rust_module(&codegen::analyse(&source).unwrap()).unwrap())
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

// ---------------------------------------------------------------------
// End-to-end CLI tests against the real `rumpsteak-gen` binary.
// ---------------------------------------------------------------------

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rumpsteak-gen"))
        .args(args)
        .output()
        .expect("rumpsteak-gen runs")
}

#[test]
fn cli_emits_the_streaming_golden() {
    let scr = fixture("protocols", "streaming.scr");
    let output = run_cli(&[scr.to_str().unwrap()]);
    assert!(output.status.success());
    let expected =
        std::fs::read_to_string(fixture("goldens", "streaming.rs")).expect("golden exists");
    assert_eq!(String::from_utf8_lossy(&output.stdout), expected);
}

#[test]
fn cli_check_passes_and_reports() {
    let scr = fixture("protocols", "double_buffering.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--check", "--k", "2"]);
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("2-MC safe"));
}

#[test]
fn cli_fsm_format_lists_projections() {
    let scr = fixture("protocols", "ring.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--format", "fsm"]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("a: rec loop.+{b!token(u64).c?token(u64).loop, b!stop.end}"));
}

#[test]
fn cli_dot_format_renders_digraphs() {
    let scr = fixture("protocols", "streaming.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--format", "dot"]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(stdout.matches("digraph").count(), 2);
}

#[test]
fn cli_rejects_malformed_scribble() {
    let dir = std::env::temp_dir().join("rumpsteak-gen-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.scr");
    std::fs::write(&path, "global protocol Broken(role a) { nonsense").unwrap();
    let output = run_cli(&[path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn cli_check_fails_on_unprojectable_protocol() {
    // Projection soundness means a parsed-and-projected protocol cannot
    // reach a k-MC violation through the CLI (that branch is unit-tested
    // against hand-built FSMs in the library), so the CLI failure path is
    // exercised with a protocol whose projection is undefined.
    let dir = std::env::temp_dir().join("rumpsteak-gen-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("unmergeable.scr");
    std::fs::write(
        &path,
        r#"
        global protocol Unmergeable(role a, role b, role c) {
            choice at a {
                l1() from a to b;
                m1() from c to b;
            } or {
                l2() from a to b;
                m2() from c to b;
            }
        }
        "#,
    )
    .unwrap();
    let output = run_cli(&[path.to_str().unwrap(), "--check"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("projection onto c failed"));
}
