//! Golden-file tests: the generated Rust for **every** protocol under
//! `tests/protocols/` is pinned byte-for-byte — the corpus is discovered
//! by globbing, so adding a protocol without a golden fails the suite.
//!
//! A protocol may carry a directive comment naming its generation flags
//! (parameter bindings, skeleton emission):
//!
//! ```text
//! // rumpsteak-gen: --param n=4 --skeleton
//! ```
//!
//! To regenerate after an intentional emitter change:
//!
//! ```text
//! cargo run -p codegen --bin rumpsteak-gen -- \
//!     crates/codegen/tests/protocols/<p>.scr <directive args> \
//!     -o crates/codegen/tests/goldens/<p>.rs
//! ```

use std::path::PathBuf;
use std::process::Command;

use theory::Name;

fn fixture(dir: &str, name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(dir)
        .join(name)
}

/// Generation flags parsed from a `// rumpsteak-gen:` directive line.
#[derive(Default)]
struct Directive {
    params: Vec<(Name, i64)>,
    skeleton: bool,
    distributed: bool,
    optimise: bool,
    bound: Option<usize>,
}

fn directive(source: &str) -> Directive {
    let mut directive = Directive::default();
    let Some(line) = source
        .lines()
        .find_map(|l| l.strip_prefix("// rumpsteak-gen:"))
    else {
        return directive;
    };
    let mut words = line.split_whitespace();
    while let Some(word) = words.next() {
        match word {
            "--skeleton" => directive.skeleton = true,
            "--distributed" => directive.distributed = true,
            "--optimise" => directive.optimise = true,
            "--bound" => {
                let value = words.next().expect("--bound N in directive");
                directive.bound = Some(value.parse().expect("integer bound"));
            }
            "--param" => {
                let (name, value) = words
                    .next()
                    .and_then(|v| v.split_once('='))
                    .expect("--param NAME=VALUE in directive");
                directive
                    .params
                    .push((Name::from(name), value.parse().expect("integer parameter")));
            }
            other => panic!("unsupported directive flag `{other}`"),
        }
    }
    directive
}

fn generate(source: &str) -> String {
    let directive = directive(source);
    let mut analysis = codegen::analyse_with(source, &directive.params).expect("protocol analyses");
    if directive.optimise {
        // Mirror the CLI: `rumpsteak-gen --optimise` always ranks by a cost
        // model — the static default table when no `--costs` artifact is
        // given — so goldens pin exactly what the tool emits.
        let config = optimiser::Config::with_depth(directive.bound.unwrap_or(1))
            .with_cost(optimiser::CostModel::default_table());
        codegen::optimise(&mut analysis, &config).expect("optimise pass succeeds");
    }
    if directive.distributed {
        codegen::rust_distributed_program(&analysis).expect("distributed program generates")
    } else if directive.skeleton {
        codegen::rust_program(&analysis).expect("program generates")
    } else {
        codegen::rust_module(&analysis).expect("module generates")
    }
}

#[test]
fn every_protocol_matches_its_golden() {
    let protocols = fixture("protocols", "");
    let mut checked = Vec::new();
    for entry in std::fs::read_dir(&protocols).expect("protocols directory exists") {
        let path = entry.expect("directory entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("scr") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 protocol name")
            .to_owned();
        let source = std::fs::read_to_string(&path).expect("protocol fixture readable");
        let expected = std::fs::read_to_string(fixture("goldens", &format!("{stem}.rs")))
            .unwrap_or_else(|_| panic!("protocol `{stem}` has no golden file"));
        assert_eq!(
            generate(&source),
            expected,
            "generated output for `{stem}` diverged from the golden file; \
             regenerate it if the change is intentional"
        );
        checked.push(stem);
    }
    checked.sort();
    // The corpus never shrinks silently.
    for required in [
        "double_buffering",
        "dstreaming",
        "gather",
        "kbuffering",
        "kbuffering_opt",
        "pmesh",
        "pring",
        "ring",
        "streaming",
    ] {
        assert!(
            checked.iter().any(|c| c == required),
            "protocol corpus lost `{required}` (found {checked:?})"
        );
    }
}

/// `examples/distributed_streaming.rs` is the `dstreaming` golden
/// shipped verbatim as a runnable example; CI runs it as two OS
/// processes. If the emitter changes, regenerate both copies.
#[test]
fn distributed_example_matches_its_golden() {
    let example =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/distributed_streaming.rs");
    let example = std::fs::read_to_string(example).expect("distributed example exists");
    let golden =
        std::fs::read_to_string(fixture("goldens", "dstreaming.rs")).expect("golden exists");
    assert_eq!(
        example, golden,
        "examples/distributed_streaming.rs drifted from the dstreaming golden; \
         copy the regenerated golden over the example"
    );
}

#[test]
fn generation_is_deterministic_across_runs() {
    let source = std::fs::read_to_string(fixture("protocols", "ring.scr")).unwrap();
    let runs: Vec<String> = (0..3)
        .map(|_| codegen::rust_module(&codegen::analyse(&source).unwrap()).unwrap())
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

// ---------------------------------------------------------------------
// End-to-end CLI tests against the real `rumpsteak-gen` binary.
// ---------------------------------------------------------------------

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rumpsteak-gen"))
        .args(args)
        .output()
        .expect("rumpsteak-gen runs")
}

#[test]
fn cli_emits_the_streaming_golden() {
    let scr = fixture("protocols", "streaming.scr");
    let output = run_cli(&[scr.to_str().unwrap()]);
    assert!(output.status.success());
    let expected =
        std::fs::read_to_string(fixture("goldens", "streaming.rs")).expect("golden exists");
    assert_eq!(String::from_utf8_lossy(&output.stdout), expected);
}

#[test]
fn cli_check_passes_and_reports() {
    let scr = fixture("protocols", "double_buffering.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--check", "--k", "2"]);
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("2-MC safe"));
}

#[test]
fn cli_fsm_format_lists_projections() {
    let scr = fixture("protocols", "ring.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--format", "fsm"]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("a: rec loop.+{b!token(u64).c?token(u64).loop, b!stop.end}"));
}

#[test]
fn cli_dot_format_renders_digraphs() {
    let scr = fixture("protocols", "streaming.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--format", "dot"]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(stdout.matches("digraph").count(), 2);
}

#[test]
fn cli_emits_the_kbuffering_skeleton_golden() {
    let scr = fixture("protocols", "kbuffering.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--param", "n=4", "--skeleton"]);
    assert!(output.status.success());
    let expected =
        std::fs::read_to_string(fixture("goldens", "kbuffering.rs")).expect("golden exists");
    assert_eq!(String::from_utf8_lossy(&output.stdout), expected);
}

#[test]
fn cli_optimise_emits_the_kbuffering_opt_golden_and_report() {
    let scr = fixture("protocols", "kbuffering_opt.scr");
    let report = std::env::temp_dir().join("rumpsteak-gen-kbuffering-opt-report.json");
    let output = run_cli(&[
        scr.to_str().unwrap(),
        "--param",
        "n=4",
        "--skeleton",
        "--optimise",
        "--report",
        report.to_str().unwrap(),
    ]);
    assert!(output.status.success());
    let expected =
        std::fs::read_to_string(fixture("goldens", "kbuffering_opt.rs")).expect("golden exists");
    assert_eq!(String::from_utf8_lossy(&output.stdout), expected);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("optimised: s: score 1"));
    assert!(stderr.contains("optimised: t: projection already optimal"));
    let report = std::fs::read_to_string(report).expect("report written");
    assert!(report.contains("\"role\": \"s\""));
    assert!(report.contains("\"improved\": true"));
    assert!(report.contains("hoist w1! past w1?"));
}

#[test]
fn cli_rejects_report_without_optimise() {
    let scr = fixture("protocols", "ring.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--report", "/tmp/unused.json"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_rejects_bound_without_optimise() {
    // `--bound` is the optimiser's unfold depth, easily confused with
    // `--k`; silently ignoring it would mislead.
    let scr = fixture("protocols", "ring.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--check", "--bound", "4"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_reports_missing_param() {
    let scr = fixture("protocols", "kbuffering.scr");
    let output = run_cli(&[scr.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unbound parameter `n`"));
}

#[test]
fn cli_rejects_malformed_param() {
    let scr = fixture("protocols", "kbuffering.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--param", "n=lots"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_rejects_distributed_without_skeleton() {
    // `--distributed` only changes what the program emitter produces;
    // without `--skeleton` there is no program to emit.
    let scr = fixture("protocols", "dstreaming.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--distributed"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_rejects_skeleton_with_non_rust_format() {
    let scr = fixture("protocols", "ring.scr");
    let output = run_cli(&[scr.to_str().unwrap(), "--skeleton", "--format", "dot"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn cli_rejects_malformed_scribble() {
    let dir = std::env::temp_dir().join("rumpsteak-gen-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.scr");
    std::fs::write(&path, "global protocol Broken(role a) { nonsense").unwrap();
    let output = run_cli(&[path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn cli_check_fails_on_unprojectable_protocol() {
    // Projection soundness means a parsed-and-projected protocol cannot
    // reach a k-MC violation through the CLI (that branch is unit-tested
    // against hand-built FSMs in the library), so the CLI failure path is
    // exercised with a protocol whose projection is undefined.
    let dir = std::env::temp_dir().join("rumpsteak-gen-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("unmergeable.scr");
    std::fs::write(
        &path,
        r#"
        global protocol Unmergeable(role a, role b, role c) {
            choice at a {
                l1() from a to b;
                m1() from c to b;
            } or {
                l2() from a to b;
                m2() from c to b;
            }
        }
        "#,
    )
    .unwrap();
    let output = run_cli(&[path.to_str().unwrap(), "--check"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("projection onto c failed"));
}
