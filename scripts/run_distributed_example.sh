#!/usr/bin/env bash
# Runs the generated distributed example as two real OS processes over
# loopback and checks both sides ran the session to completion.
#
# Usage:
#     run_distributed_example.sh tcp|uds [BINARY]
#
# BINARY defaults to the release build of examples/distributed_streaming
# (built with `cargo build --release --example distributed_streaming`);
# pass a path to skip the cargo invocation, e.g. in CI after a workspace
# build.
#
# Topology: role S is listed first so role T (listed later) dials S;
# S accepts. Starting T first exercises the dial-retry path.
set -euo pipefail

mode="${1:-}"
case "$mode" in
    tcp | uds) ;;
    *)
        echo "usage: $0 tcp|uds [BINARY]" >&2
        exit 2
        ;;
esac

repo="$(cd "$(dirname "$0")/.." && pwd)"
binary="${2:-}"
if [[ -z "$binary" ]]; then
    (cd "$repo" && cargo build --release --example distributed_streaming)
    binary="$repo/target/release/examples/distributed_streaming"
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

topology="$workdir/topology.txt"
if [[ "$mode" == tcp ]]; then
    # Two free loopback ports, bound briefly by python to reserve them.
    read -r port_s port_t < <(python3 - <<'EOF'
import socket
sockets = [socket.socket() for _ in range(2)]
for s in sockets:
    s.bind(("127.0.0.1", 0))
print(*(s.getsockname()[1] for s in sockets))
for s in sockets:
    s.close()
EOF
)
    printf 'S tcp:127.0.0.1:%s\nT tcp:127.0.0.1:%s\n' "$port_s" "$port_t" > "$topology"
else
    printf 'S uds:%s/s.sock\nT uds:%s/t.sock\n' "$workdir" "$workdir" > "$topology"
fi

echo "== topology ($mode) =="
cat "$topology"

# T dials S and retries until S binds, so launch order is free; start T
# first to make the retry path do real work.
timeout 60 "$binary" T "$topology" > "$workdir/t.log" 2>&1 &
t_pid=$!
status=0
timeout 60 "$binary" S "$topology" > "$workdir/s.log" 2>&1 || status=$?
wait "$t_pid" || status=$?

echo "== role S =="
cat "$workdir/s.log"
echo "== role T =="
cat "$workdir/t.log"

if [[ "$status" -ne 0 ]]; then
    echo "run_distributed_example: a role exited with status $status" >&2
    exit 1
fi
for role in s t; do
    if ! grep -q "ran to completion" "$workdir/$role.log"; then
        echo "run_distributed_example: role ${role^^} did not report completion" >&2
        exit 1
    fi
done
echo "run_distributed_example: ok ($mode)"
