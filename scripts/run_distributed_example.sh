#!/usr/bin/env bash
# Runs the generated distributed example as two real OS processes over
# loopback and checks both sides ran the session to completion.
#
# Usage:
#     run_distributed_example.sh tcp|uds [BINARY] [--telemetry TRACE_BIN]
#
# BINARY defaults to the release build of examples/distributed_streaming
# (built with `cargo build --release --example distributed_streaming`);
# pass a path to skip the cargo invocation, e.g. in CI after a workspace
# build.
#
# --telemetry TRACE_BIN additionally exercises the observability path
# (requires a BINARY built with `--features telemetry`): role S serves
# `GET /metrics`, a scraper polls it *while the session runs* and
# asserts the exposition parses and carries per-link histogram series,
# both roles write trace dumps, and TRACE_BIN (a `rumpsteak-trace`
# build) merges them into one timeline — failing unless every protocol
# edge with frame sends produced at least one cross-process flow event.
#
# Topology: role S is listed first so role T (listed later) dials S;
# S accepts. Starting T first exercises the dial-retry path.
set -euo pipefail

mode="${1:-}"
case "$mode" in
    tcp | uds) ;;
    *)
        echo "usage: $0 tcp|uds [BINARY] [--telemetry TRACE_BIN]" >&2
        exit 2
        ;;
esac
shift

binary=""
trace_bin=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --telemetry)
            trace_bin="${2:?--telemetry requires a rumpsteak-trace binary}"
            shift 2
            ;;
        *)
            binary="$1"
            shift
            ;;
    esac
done

repo="$(cd "$(dirname "$0")/.." && pwd)"
if [[ -z "$binary" ]]; then
    (cd "$repo" && cargo build --release --example distributed_streaming)
    binary="$repo/target/release/examples/distributed_streaming"
fi

workdir="$(mktemp -d)"
pids=()
# The trap owns teardown for every exit path: any still-running role is
# killed (so an interrupt can't leak a process holding a bound socket)
# and the workdir — UDS sockets included — is removed.
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT
trap 'exit 130' INT TERM

topology="$workdir/topology.txt"
metrics_port=""
if [[ "$mode" == tcp || -n "$trace_bin" ]]; then
    # Free loopback ports, bound briefly by python to reserve them: two
    # for a TCP topology, one more for the metrics endpoint.
    count=0
    [[ "$mode" == tcp ]] && count=2
    [[ -n "$trace_bin" ]] && count=$((count + 1))
    read -r -a ports < <(COUNT="$count" python3 - <<'EOF'
import os, socket
sockets = [socket.socket() for _ in range(int(os.environ["COUNT"]))]
for s in sockets:
    s.bind(("127.0.0.1", 0))
print(*(s.getsockname()[1] for s in sockets))
for s in sockets:
    s.close()
EOF
)
    [[ -n "$trace_bin" ]] && metrics_port="${ports[-1]}"
fi
if [[ "$mode" == tcp ]]; then
    printf 'S tcp:127.0.0.1:%s\nT tcp:127.0.0.1:%s\n' "${ports[0]}" "${ports[1]}" > "$topology"
else
    printf 'S uds:%s/s.sock\nT uds:%s/t.sock\n' "$workdir" "$workdir" > "$topology"
fi

echo "== topology ($mode) =="
cat "$topology"

if [[ -n "$trace_bin" ]]; then
    # Polls role S's metrics endpoint until the exposition carries
    # per-link wire-latency histogram series (and every line parses),
    # then saves that scrape. Exits 1 on timeout — the run is over and
    # the endpoint is gone, so a miss means the mid-run window closed
    # without a valid scrape.
    cat > "$workdir/scrape.py" <<'EOF'
import pathlib, re, sys, time, urllib.request

url, out_path, ready_path = sys.argv[1], sys.argv[2], sys.argv[3]
line_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [0-9.e+-]+$")
# The session is over in milliseconds, so the launcher holds the roles
# back until this file exists — interpreter startup must not eat the
# scrape window.
pathlib.Path(ready_path).touch()
deadline = time.monotonic() + 30
while time.monotonic() < deadline:
    try:
        with urllib.request.urlopen(url, timeout=1) as response:
            body = response.read().decode()
    except OSError:
        time.sleep(0.0005)
        continue
    for line in body.splitlines():
        if line and not line.startswith("#") and not line_re.match(line):
            sys.exit(f"unparseable exposition line: {line!r}")
    if 'rumpsteak_wire_latency_ns{' in body and 'quantile="0.99"' in body:
        with open(out_path, "w") as handle:
            handle.write(body)
        print(f"scraped {len(body)} byte(s) mid-run")
        sys.exit(0)
    time.sleep(0.0005)
sys.exit("metrics endpoint never served per-link histogram series")
EOF
fi

# One telemetry attempt can lose the race between the scraper and a
# fast session (the endpoint lives exactly as long as the run), so the
# launch block retries a miss; role failures fail immediately.
attempts=1
[[ -n "$trace_bin" ]] && attempts=5
scrape_ok=1
for attempt in $(seq 1 "$attempts"); do
    scrape_pid=""
    if [[ -n "$trace_bin" ]]; then
        rm -f "$workdir/scrape.ready"
        python3 "$workdir/scrape.py" \
            "http://127.0.0.1:$metrics_port/metrics" "$workdir/metrics.txt" \
            "$workdir/scrape.ready" > "$workdir/scrape.log" 2>&1 &
        scrape_pid=$!
        pids+=("$scrape_pid")
        # Hold the roles until the scraper is actually polling.
        for _ in $(seq 1 200); do
            [[ -e "$workdir/scrape.ready" ]] && break
            sleep 0.05
        done
    fi

    # T dials S and retries until S binds, so launch order is free;
    # start T first to make the retry path do real work. Each role is
    # waited on individually: either crashing fails the script with
    # that role's own exit status. The observability env vars are only
    # *set* in telemetry mode — the generated main treats a set-but-
    # empty value as a real path/address.
    t_env=()
    s_env=()
    if [[ -n "$trace_bin" ]]; then
        t_env=("RUMPSTEAK_TRACE_OUT=$workdir/t.trace")
        s_env=(
            "RUMPSTEAK_TRACE_OUT=$workdir/s.trace"
            "RUMPSTEAK_METRICS=127.0.0.1:$metrics_port"
        )
    fi
    env "${t_env[@]}" timeout 60 "$binary" T "$topology" > "$workdir/t.log" 2>&1 &
    t_pid=$!
    pids+=("$t_pid")
    env "${s_env[@]}" timeout 60 "$binary" S "$topology" > "$workdir/s.log" 2>&1 &
    s_pid=$!
    pids+=("$s_pid")

    status_s=0
    status_t=0
    wait "$s_pid" || status_s=$?
    wait "$t_pid" || status_t=$?

    echo "== role S (attempt $attempt) =="
    cat "$workdir/s.log"
    echo "== role T (attempt $attempt) =="
    cat "$workdir/t.log"

    for role in S T; do
        status_var="status_${role,,}"
        if [[ "${!status_var}" -ne 0 ]]; then
            echo "run_distributed_example: role $role exited with status ${!status_var}" >&2
            exit 1
        fi
        if ! grep -q "ran to completion" "$workdir/${role,,}.log"; then
            echo "run_distributed_example: role $role did not report completion" >&2
            exit 1
        fi
    done

    [[ -z "$trace_bin" ]] && break
    # The endpoint died with role S: a scraper still polling now can
    # only time out, so give it a moment to finish writing and reap it.
    sleep 0.2
    kill "$scrape_pid" 2>/dev/null || true
    scrape_ok=0
    wait "$scrape_pid" || scrape_ok=$?
    cat "$workdir/scrape.log"
    [[ "$scrape_ok" -eq 0 ]] && break
    echo "run_distributed_example: mid-run scrape missed, retrying" >&2
done

if [[ -n "$trace_bin" ]]; then
    if [[ "$scrape_ok" -ne 0 ]]; then
        echo "run_distributed_example: metrics endpoint was never scraped mid-run" >&2
        exit 1
    fi
    echo "== metrics (wire latency series) =="
    grep "rumpsteak_wire_latency_ns" "$workdir/metrics.txt"

    # Stitch the two per-process dumps; rumpsteak-trace exits non-zero
    # if any edge with frame sends produced no cross-process flow.
    echo "== trace merge =="
    "$trace_bin" --merge "$workdir/s.trace" "$workdir/t.trace" \
        --out "$workdir/merged.json"
    python3 -m json.tool "$workdir/merged.json" > /dev/null
    echo "run_distributed_example: merged timeline is well-formed JSON"
fi

echo "run_distributed_example: ok ($mode)"
