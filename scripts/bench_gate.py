#!/usr/bin/env python3
"""Bench regression gate: compare a fresh `fig6 --json` run against the
committed baseline artifact.

Usage:
    bench_gate.py BASELINE.json CURRENT.json [--tolerance X]
                  [--require-prefix P ...]

For every protocol present in the baseline, the best (minimum) ns/op
across thread counts is compared against the current run's best. Quick
mode runs the same workload sizes as the committed full-mode baseline
(only the measurement budget shrinks), so per-op numbers are directly
comparable; the gate fails only when the current best is more than
`--tolerance` times slower (default 2.5x) — generous on purpose, so
noisy shared CI runners and the quick mode's smaller sample counts do
not trip it, while genuine order-of-magnitude regressions still do.

`--require-prefix P` (repeatable) additionally fails the gate unless
both runs contain at least one protocol starting with `P`: a microbench
family (e.g. the `channel_` rows) cannot silently vanish from the sweep
and thereby escape regression coverage.

Exit codes: 0 pass, 1 regression (or baseline protocol missing from the
current run), 2 usage/IO error.
"""

import argparse
import json
import math
import sys


def best_ns_per_op(report, label):
    """Maps protocol -> minimum ns/op across the sweep.

    Tolerant by design: artifacts carry metadata and optional sections
    (provenance keys, a `telemetry` object in instrumented runs) beyond
    the result rows, and may grow more. Anything that is not a
    well-formed numeric result row is skipped with a note, never a
    crash — the gate's verdict must come from the timings alone.
    """
    best = {}
    skipped = 0
    results = report.get("results", [])
    if not isinstance(results, list):
        print(f"bench_gate: {label}: `results` is not a list", file=sys.stderr)
        return best
    for result in results:
        if not isinstance(result, dict):
            skipped += 1
            continue
        protocol = result.get("protocol")
        try:
            ns = float(result.get("ns_per_op"))
        except (TypeError, ValueError):
            skipped += 1
            continue
        if not isinstance(protocol, str) or not math.isfinite(ns):
            skipped += 1
            continue
        if protocol not in best or ns < best[protocol]:
            best[protocol] = ns
    if skipped:
        print(
            f"bench_gate: {label}: skipped {skipped} non-numeric or "
            f"malformed result row(s)",
            file=sys.stderr,
        )
    return best


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print(f"bench_gate: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_fig6.json")
    parser.add_argument("current", help="freshly generated fig6 --json output")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="maximum allowed slowdown factor (default: 2.5)",
    )
    parser.add_argument(
        "--require-prefix",
        action="append",
        default=[],
        metavar="P",
        help="fail unless both runs contain a protocol starting with P "
        "(repeatable)",
    )
    args = parser.parse_args()
    if args.tolerance <= 0:
        print("bench_gate: --tolerance must be positive", file=sys.stderr)
        sys.exit(2)

    baseline = best_ns_per_op(load(args.baseline), "baseline")
    current = best_ns_per_op(load(args.current), "current")
    if not baseline:
        print("bench_gate: baseline has no results", file=sys.stderr)
        sys.exit(2)

    failures = []
    for prefix in args.require_prefix:
        for name, run in (("baseline", baseline), ("current", current)):
            if not any(protocol.startswith(prefix) for protocol in run):
                known = sorted(p for p in baseline if p.startswith(prefix))
                hint = (
                    f" (baseline has: {', '.join(known)})"
                    if known and name == "current"
                    else ""
                )
                failures.append(
                    f"required protocol prefix `{prefix}` missing from "
                    f"{name} run{hint}"
                )

    # Every row is compared before any verdict is acted on: a perf PR
    # gets the complete regression picture — each offending protocol
    # with its slowdown ratio, worst first — from a single CI run.
    regressions = []
    print(f"{'protocol':<22} {'baseline':>12} {'current':>12} {'ratio':>8}  verdict")
    for protocol in sorted(baseline):
        base = baseline[protocol]
        if protocol not in current:
            print(f"{protocol:<22} {base:>12.1f} {'MISSING':>12} {'-':>8}  FAIL")
            regressions.append((float("inf"), f"{protocol}: missing from current run"))
            continue
        cur = current[protocol]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok" if ratio <= args.tolerance else "FAIL"
        print(f"{protocol:<22} {base:>12.1f} {cur:>12.1f} {ratio:>8.2f}  {verdict}")
        if verdict == "FAIL":
            regressions.append(
                (
                    ratio,
                    f"{protocol}: {cur:.1f} ns/op vs baseline {base:.1f} "
                    f"({ratio:.2f}x > {args.tolerance}x)",
                )
            )
    for protocol in sorted(set(current) - set(baseline)):
        print(f"{protocol:<22} {'-':>12} {current[protocol]:>12.1f} {'-':>8}  new")

    if regressions or failures:
        count = len(regressions) + len(failures)
        print(f"\nbench_gate: {count} failure(s), worst first:", file=sys.stderr)
        for _, message in sorted(regressions, key=lambda r: -r[0]):
            print(f"  {message}", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_gate: all protocols within {args.tolerance}x of baseline")


if __name__ == "__main__":
    main()
