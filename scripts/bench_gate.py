#!/usr/bin/env python3
"""Bench regression gate: compare a fresh `fig6 --json` run against the
committed baseline artifact.

Usage:
    bench_gate.py BASELINE.json CURRENT.json [--tolerance X]
                  [--family-tolerance PROTO=X ...] [--require-prefix P ...]
                  [--quality-pair OPT:PROJ ...] [--quality-slack X]

For every protocol present in the baseline, the best (minimum) ns/op
across thread counts is compared against the current run's best. Quick
mode runs the same workload sizes as the committed full-mode baseline
(only the measurement budget shrinks), so per-op numbers are directly
comparable; the gate fails only when the current best is more than
`--tolerance` times slower (default 2.5x) — generous on purpose, so
noisy shared CI runners and the quick mode's smaller sample counts do
not trip it, while genuine order-of-magnitude regressions still do.
`--family-tolerance PROTO=X` (repeatable) overrides the factor for one
protocol; the tolerance actually applied is printed in every table row
and failure line.

`--require-prefix P` (repeatable) additionally fails the gate unless
both runs contain at least one protocol starting with `P`: a microbench
family (e.g. the `channel_` rows) cannot silently vanish from the sweep
and thereby escape regression coverage.

`--quality-pair OPT:PROJ` (repeatable) is the optimiser's quality loop:
both rows must be present, and the AMR-optimised variant `OPT` must
beat its unoptimised projection `PROJ` — strictly in the committed
baseline (full measurement budget, so a loss there means the optimiser
picked a bad candidate), and within `--quality-slack` (default 1.25x)
in the current run, whose quick-mode sample is noisier.

Exit codes: 0 pass, 1 regression / quality failure (or baseline
protocol missing from the current run), 2 usage/IO error.
"""

import argparse
import json
import math
import sys


def best_ns_per_op(report, label):
    """Maps protocol -> minimum ns/op across the sweep.

    Tolerant by design: artifacts carry metadata and optional sections
    (provenance keys, a `telemetry` object in instrumented runs) beyond
    the result rows, and may grow more. Anything that is not a
    well-formed numeric result row is skipped with a note, never a
    crash — the gate's verdict must come from the timings alone.
    """
    best = {}
    skipped = 0
    results = report.get("results", [])
    if not isinstance(results, list):
        print(f"bench_gate: {label}: `results` is not a list", file=sys.stderr)
        return best
    for result in results:
        if not isinstance(result, dict):
            skipped += 1
            continue
        protocol = result.get("protocol")
        try:
            ns = float(result.get("ns_per_op"))
        except (TypeError, ValueError):
            skipped += 1
            continue
        if not isinstance(protocol, str) or not math.isfinite(ns):
            skipped += 1
            continue
        if protocol not in best or ns < best[protocol]:
            best[protocol] = ns
    if skipped:
        print(
            f"bench_gate: {label}: skipped {skipped} non-numeric or "
            f"malformed result row(s)",
            file=sys.stderr,
        )
    return best


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print(f"bench_gate: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_fig6.json")
    parser.add_argument("current", help="freshly generated fig6 --json output")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="maximum allowed slowdown factor (default: 2.5)",
    )
    parser.add_argument(
        "--family-tolerance",
        action="append",
        default=[],
        metavar="PROTO=X",
        help="per-protocol tolerance override (repeatable), e.g. "
        "double_buffering=1.5",
    )
    parser.add_argument(
        "--require-prefix",
        action="append",
        default=[],
        metavar="P",
        help="fail unless both runs contain a protocol starting with P "
        "(repeatable)",
    )
    parser.add_argument(
        "--quality-pair",
        action="append",
        default=[],
        metavar="OPT:PROJ",
        help="require the optimised row OPT to beat the projection row "
        "PROJ: strictly in the baseline, within --quality-slack in the "
        "current run (repeatable)",
    )
    parser.add_argument(
        "--quality-slack",
        type=float,
        default=1.25,
        help="allowed opt/proj ratio in the (noisier) current run "
        "(default: 1.25)",
    )
    args = parser.parse_args()
    if args.tolerance <= 0:
        print("bench_gate: --tolerance must be positive", file=sys.stderr)
        sys.exit(2)
    if args.quality_slack <= 0:
        print("bench_gate: --quality-slack must be positive", file=sys.stderr)
        sys.exit(2)
    family_tolerance = {}
    for override in args.family_tolerance:
        protocol, _, factor = override.partition("=")
        try:
            factor = float(factor)
        except ValueError:
            factor = 0.0
        if not protocol or factor <= 0:
            print(
                f"bench_gate: --family-tolerance `{override}` is not "
                f"PROTO=X with positive X",
                file=sys.stderr,
            )
            sys.exit(2)
        family_tolerance[protocol] = factor
    quality_pairs = []
    for pair in args.quality_pair:
        opt, _, proj = pair.partition(":")
        if not opt or not proj:
            print(
                f"bench_gate: --quality-pair `{pair}` is not OPT:PROJ",
                file=sys.stderr,
            )
            sys.exit(2)
        quality_pairs.append((opt, proj))

    baseline = best_ns_per_op(load(args.baseline), "baseline")
    current = best_ns_per_op(load(args.current), "current")
    if not baseline:
        print("bench_gate: baseline has no results", file=sys.stderr)
        sys.exit(2)

    failures = []
    for prefix in args.require_prefix:
        for name, run in (("baseline", baseline), ("current", current)):
            if not any(protocol.startswith(prefix) for protocol in run):
                known = sorted(p for p in baseline if p.startswith(prefix))
                hint = (
                    f" (baseline has: {', '.join(known)})"
                    if known and name == "current"
                    else ""
                )
                failures.append(
                    f"required protocol prefix `{prefix}` missing from "
                    f"{name} run{hint}"
                )

    # Every row is compared before any verdict is acted on: a perf PR
    # gets the complete regression picture — each offending protocol
    # with its slowdown ratio and the tolerance it was held to, worst
    # first — from a single CI run.
    regressions = []
    print(
        f"{'protocol':<30} {'baseline':>12} {'current':>12} {'ratio':>8} "
        f"{'tol':>6}  verdict"
    )
    for protocol in sorted(baseline):
        base = baseline[protocol]
        tolerance = family_tolerance.get(protocol, args.tolerance)
        if protocol not in current:
            print(
                f"{protocol:<30} {base:>12.1f} {'MISSING':>12} {'-':>8} "
                f"{tolerance:>6.2f}  FAIL"
            )
            regressions.append((float("inf"), f"{protocol}: missing from current run"))
            continue
        cur = current[protocol]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok" if ratio <= tolerance else "FAIL"
        print(
            f"{protocol:<30} {base:>12.1f} {cur:>12.1f} {ratio:>8.2f} "
            f"{tolerance:>6.2f}  {verdict}"
        )
        if verdict == "FAIL":
            regressions.append(
                (
                    ratio,
                    f"{protocol}: {cur:.1f} ns/op vs baseline {base:.1f} "
                    f"({ratio:.2f}x > tolerance {tolerance}x)",
                )
            )
    for protocol in sorted(set(current) - set(baseline)):
        print(
            f"{protocol:<30} {'-':>12} {current[protocol]:>12.1f} {'-':>8} "
            f"{'-':>6}  new"
        )

    # Optimiser quality loop: the chosen AMR variant must beat the
    # unoptimised projection it replaced. The committed baseline carries
    # the full measurement budget, so a loss there is a bad pick, not
    # noise; the fresh (quick) run gets the slack factor.
    quality_failures = []
    if quality_pairs:
        print(f"\n{'quality pair':<44} {'opt':>10} {'proj':>10} {'ratio':>8}  verdict")
    for opt, proj in quality_pairs:
        for run_name, run, limit in (
            ("baseline", baseline, 1.0),
            ("current", current, args.quality_slack),
        ):
            label = f"{opt} vs {proj} [{run_name}]"
            missing = [row for row in (opt, proj) if row not in run]
            if missing:
                print(f"{label:<44} {'-':>10} {'-':>10} {'-':>8}  FAIL")
                quality_failures.append(
                    f"{label}: row(s) missing from {run_name} run: "
                    f"{', '.join(missing)}"
                )
                continue
            ratio = run[opt] / run[proj] if run[proj] > 0 else float("inf")
            verdict = "ok" if ratio <= limit else "FAIL"
            print(
                f"{label:<44} {run[opt]:>10.1f} {run[proj]:>10.1f} "
                f"{ratio:>8.2f}  {verdict}"
            )
            if verdict == "FAIL":
                quality_failures.append(
                    f"{label}: optimised {run[opt]:.1f} ns/op does not beat "
                    f"projection {run[proj]:.1f} ({ratio:.2f}x > {limit}x) — "
                    f"the optimiser's pick lost on the bench"
                )

    if regressions or failures or quality_failures:
        count = len(regressions) + len(failures) + len(quality_failures)
        print(f"\nbench_gate: {count} failure(s), worst first:", file=sys.stderr)
        for _, message in sorted(regressions, key=lambda r: -r[0]):
            print(f"  {message}", file=sys.stderr)
        for failure in failures + quality_failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    extra = (
        f", {len(quality_pairs)} quality pair(s) hold" if quality_pairs else ""
    )
    print(f"\nbench_gate: all protocols within tolerance{extra}")


if __name__ == "__main__":
    main()
