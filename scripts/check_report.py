#!/usr/bin/env python3
"""Schema check for `rumpsteak-gen --optimise --report` output.

Usage:
    check_report.py REPORT.json

The report is a JSON array with one object per role. Every object must
carry the full field set — search statistics, the cost-model provenance
(`cost_source`, `pruned`, per-candidate `estimated_saving_ns`), the
chosen rewrite derivation — with internally consistent values:

* `improved` is true exactly when `best` is present,
* `best`, when present, is the first entry of `candidates`,
* `candidates` lists exactly the `verified` candidates, and
* `verified` never exceeds `generated`.

A report that parses but violates the schema exits 1 with one line per
problem; unreadable input exits 2. CI runs this against a freshly
generated report so the machine-readable surface downstream tooling
consumes (plots, the bench quality gate's provenance) cannot drift
silently.
"""

import json
import math
import sys

COST_SOURCES = {"default-table", "measured"}


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def is_saving(value):
    return value is None or (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def check_candidate(where, candidate, problems):
    if not isinstance(candidate, dict):
        problems.append(f"{where}: not an object")
        return
    if not isinstance(candidate.get("local"), str) or not candidate.get("local"):
        problems.append(f"{where}: `local` is not a non-empty string")
    if not is_count(candidate.get("score")):
        problems.append(f"{where}: `score` is not a non-negative integer")
    if not is_count(candidate.get("states")) or candidate.get("states") == 0:
        problems.append(f"{where}: `states` is not a positive integer")
    if not is_count(candidate.get("visited_pairs")):
        problems.append(f"{where}: `visited_pairs` is not a non-negative integer")
    if "estimated_saving_ns" not in candidate:
        problems.append(f"{where}: missing `estimated_saving_ns`")
    elif not is_saving(candidate["estimated_saving_ns"]):
        problems.append(f"{where}: `estimated_saving_ns` is not null or finite")


def check_role(index, report, problems):
    if not isinstance(report, dict):
        problems.append(f"report[{index}]: not an object")
        return
    role = report.get("role")
    where = f"report[{index}] ({role})" if isinstance(role, str) else f"report[{index}]"
    if not isinstance(role, str) or not role:
        problems.append(f"{where}: `role` is not a non-empty string")
    if not isinstance(report.get("projection"), str) or not report.get("projection"):
        problems.append(f"{where}: `projection` is not a non-empty string")
    for key in ("generated", "pruned", "verified", "bound"):
        if not is_count(report.get(key)):
            problems.append(f"{where}: `{key}` is not a non-negative integer")
    for key in ("truncated", "improved"):
        if not isinstance(report.get(key), bool):
            problems.append(f"{where}: `{key}` is not a boolean")
    if "cost_source" not in report:
        problems.append(f"{where}: missing `cost_source`")
    elif report["cost_source"] is not None and report["cost_source"] not in COST_SOURCES:
        problems.append(
            f"{where}: `cost_source` is not null or one of "
            f"{sorted(COST_SOURCES)}: {report['cost_source']!r}"
        )

    candidates = report.get("candidates")
    if not isinstance(candidates, list):
        problems.append(f"{where}: `candidates` is not an array")
        candidates = []
    for position, candidate in enumerate(candidates):
        check_candidate(f"{where}.candidates[{position}]", candidate, problems)
    if is_count(report.get("verified")) and len(candidates) != report["verified"]:
        problems.append(
            f"{where}: `candidates` lists {len(candidates)} entries but "
            f"`verified` is {report['verified']}"
        )
    if is_count(report.get("verified")) and is_count(report.get("generated")):
        if report["verified"] > report["generated"]:
            problems.append(
                f"{where}: `verified` {report['verified']} exceeds "
                f"`generated` {report['generated']}"
            )

    best = report.get("best", "absent")
    if best == "absent":
        problems.append(f"{where}: missing `best`")
        best = None
    if report.get("improved") is not None and report.get("improved") != (
        best is not None
    ):
        problems.append(f"{where}: `improved` disagrees with `best` being present")
    if best is not None:
        check_candidate(f"{where}.best", best, problems)
        if isinstance(best, dict):
            derivation = best.get("derivation")
            if (
                not isinstance(derivation, list)
                or not derivation
                or not all(isinstance(step, str) and step for step in derivation)
            ):
                problems.append(
                    f"{where}.best: `derivation` is not a non-empty array "
                    f"of step strings"
                )
            if (
                candidates
                and isinstance(candidates[0], dict)
                and best.get("local") != candidates[0].get("local")
            ):
                problems.append(
                    f"{where}: `best` is not the first ranked candidate"
                )


def main():
    if len(sys.argv) != 2 or sys.argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            reports = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"check_report: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)

    problems = []
    if not isinstance(reports, list) or not reports:
        problems.append("report is not a non-empty JSON array of role objects")
    else:
        for index, report in enumerate(reports):
            check_role(index, report, problems)

    if problems:
        print(f"check_report: {path}: {len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        sys.exit(1)
    roles = sum(1 for r in reports if isinstance(r, dict))
    improved = sum(1 for r in reports if isinstance(r, dict) and r.get("improved"))
    print(f"check_report: {path}: {roles} role(s) valid, {improved} improved")


if __name__ == "__main__":
    main()
