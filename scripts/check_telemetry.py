#!/usr/bin/env python3
"""Schema check for the `telemetry` section of `fig6 --json --telemetry`.

Usage:
    check_telemetry.py ARTIFACT.json

Validates the instrumented artifact CI produces with
`fig6 --json --quick --telemetry`:

* provenance metadata is present (`git_revision`, `rustc_version`,
  `generated_at`, `host_parallelism`),
* `telemetry.scheduler` is a non-empty sweep of per-runtime snapshots,
  each with `threads` worker counter blocks plus an `external` block,
  every block carrying the full counter glossary as non-negative
  integers, and at least one worker having actually run tasks,
* `telemetry.channels` is a non-empty list of per-link rows carrying
  the full data-plane counter set (sends/wakes, batch drains, pool
  hits/misses, back-pressure parks, shrinks); every row with a
  registered k-MC bound satisfies `high_watermark <= kmc_bound`, every
  row with a registered batch window satisfies
  `batch_window <= kmc_bound` (a receive window wider than k would
  drain past what the verification covers), and at least one row
  carries a bound (the session layer must have registered the
  statically verified depths, not just counted),
* `telemetry.transport` is a non-empty list of per-socket-link rows
  carrying the frame/byte/stall/reconnect counter set; every row with
  both a send window and a k-MC bound registered satisfies
  `send_window <= kmc_bound` (the socket window may never out-run the
  verified depth), at least one row has a registered send window, and
  at least one row moved actual frames,
* latency histograms: every channel row carries a `latency` member and
  every transport row a `wire_latency` member — `null` when the link
  recorded no samples, else `{count, p50, p90, p99, p999, max}` with a
  positive count and a monotone quantile ladder
  (`p50 <= p90 <= p99 <= p999 <= max`); at least one channel row and
  one transport row must carry real samples (the stamp paths cannot
  all be dead),
* `telemetry.sessions` is a non-empty list of `{role, lifetime_ns}`
  spawn-to-teardown histograms with at least one recorded lifetime.

Exit codes: 0 pass, 1 schema violation, 2 usage/IO error.
"""

import json
import sys

COUNTERS = (
    "spawns",
    "completions",
    "polls",
    "lifo_hits",
    "local_pops",
    "injector_pops",
    "sibling_steals",
    "spills",
    "parks",
    "unparks",
)

CHANNEL_COUNTS = (
    "high_watermark",
    "grows",
    "shrinks",
    "waker_retries",
    "sends",
    "wakes",
    "batches",
    "batched_messages",
    "pool_hits",
    "pool_misses",
    "backpressure_parks",
    "instances",
)

TRANSPORT_COUNTS = (
    "frames_sent",
    "frames_received",
    "bytes_sent",
    "bytes_received",
    "window_stalls",
    "reconnects",
    "instances",
)


def fail(errors):
    print("check_telemetry: schema violations:", file=sys.stderr)
    for error in errors:
        print(f"  {error}", file=sys.stderr)
    sys.exit(1)


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


QUANTILES = ("p50", "p90", "p99", "p999", "max")


def check_hist(hist, where, errors):
    """Validates one histogram member; returns True when it has samples.

    `None` is legal (the link recorded nothing); anything else must be
    a complete quantile object with a monotone ladder.
    """
    if hist is None:
        return False
    if not isinstance(hist, dict):
        errors.append(f"{where}: not null or an object")
        return False
    for key in ("count",) + QUANTILES:
        if not is_count(hist.get(key)):
            errors.append(
                f"{where}.{key}: missing or not a non-negative integer"
            )
            return False
    if hist["count"] == 0:
        errors.append(f"{where}: present but count is 0 (should be null)")
        return False
    ladder = [hist[q] for q in QUANTILES]
    if ladder != sorted(ladder):
        errors.append(
            f"{where}: quantile ladder is not monotone: "
            + ", ".join(f"{q}={hist[q]}" for q in QUANTILES)
        )
        return False
    return True


def check_counter_block(block, where, errors):
    if not isinstance(block, dict):
        errors.append(f"{where}: not an object")
        return
    for key in COUNTERS:
        if not is_count(block.get(key)):
            errors.append(
                f"{where}: counter `{key}` missing or not a non-negative integer"
            )


def check_scheduler(scheduler, errors):
    if not isinstance(scheduler, list) or not scheduler:
        errors.append("telemetry.scheduler: missing or empty")
        return
    for i, entry in enumerate(scheduler):
        where = f"telemetry.scheduler[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        threads = entry.get("threads")
        workers = entry.get("workers")
        if not is_count(threads) or threads == 0:
            errors.append(f"{where}.threads: not a positive integer")
        if not isinstance(workers, list):
            errors.append(f"{where}.workers: not a list")
            continue
        if is_count(threads) and len(workers) != threads:
            errors.append(
                f"{where}: {len(workers)} worker blocks for threads={threads}"
            )
        for j, worker in enumerate(workers):
            check_counter_block(worker, f"{where}.workers[{j}]", errors)
        check_counter_block(entry.get("external"), f"{where}.external", errors)
    # The sweep must show actual scheduling, not ten columns of zeros.
    polls = sum(
        worker.get("polls", 0)
        for entry in scheduler
        if isinstance(entry, dict)
        for worker in entry.get("workers", [])
        if isinstance(worker, dict) and is_count(worker.get("polls"))
    )
    if polls == 0:
        errors.append("telemetry.scheduler: no worker recorded any polls")


def check_channels(channels, errors):
    if not isinstance(channels, list) or not channels:
        errors.append("telemetry.channels: missing or empty")
        return
    bounded = 0
    sampled = 0
    for i, link in enumerate(channels):
        where = f"telemetry.channels[{i}]"
        if not isinstance(link, dict):
            errors.append(f"{where}: not an object")
            continue
        name = f"{link.get('from')} -> {link.get('to')}"
        for key in ("from", "to"):
            if not isinstance(link.get(key), str) or not link[key]:
                errors.append(f"{where}.{key}: missing or not a string")
        for key in CHANNEL_COUNTS:
            if not is_count(link.get(key)):
                errors.append(
                    f"{where} ({name}).{key}: missing or not a "
                    f"non-negative integer"
                )
        if "latency" not in link:
            errors.append(f"{where} ({name}): no `latency` member")
        elif check_hist(link["latency"], f"{where} ({name}).latency", errors):
            sampled += 1
        bound = link.get("kmc_bound")
        if bound is None:
            continue
        if not is_count(bound) or bound == 0:
            errors.append(f"{where} ({name}).kmc_bound: not a positive integer")
            continue
        bounded += 1
        watermark = link.get("high_watermark")
        if is_count(watermark) and watermark > bound:
            errors.append(
                f"{where} ({name}): high_watermark {watermark} exceeds "
                f"verified k-MC bound {bound}"
            )
        window = link.get("batch_window")
        if window is not None:
            if not is_count(window) or window == 0:
                errors.append(
                    f"{where} ({name}).batch_window: not a positive integer"
                )
            elif window > bound:
                errors.append(
                    f"{where} ({name}): batch_window {window} exceeds "
                    f"verified k-MC bound {bound}"
                )
    if bounded == 0:
        errors.append(
            "telemetry.channels: no link carries a registered k-MC bound"
        )
    if sampled == 0:
        errors.append(
            "telemetry.channels: no link recorded send->recv latency "
            "samples — the slot-commit stamp path is dead"
        )


def check_transport(transport, errors):
    if not isinstance(transport, list) or not transport:
        errors.append("telemetry.transport: missing or empty")
        return
    windowed = 0
    framed = 0
    sampled = 0
    for i, link in enumerate(transport):
        where = f"telemetry.transport[{i}]"
        if not isinstance(link, dict):
            errors.append(f"{where}: not an object")
            continue
        name = f"{link.get('from')} -> {link.get('to')}"
        for key in ("from", "to"):
            if not isinstance(link.get(key), str) or not link[key]:
                errors.append(f"{where}.{key}: missing or not a string")
        for key in TRANSPORT_COUNTS:
            if not is_count(link.get(key)):
                errors.append(
                    f"{where} ({name}).{key}: missing or not a "
                    f"non-negative integer"
                )
        if "wire_latency" not in link:
            errors.append(f"{where} ({name}): no `wire_latency` member")
        elif check_hist(
            link["wire_latency"], f"{where} ({name}).wire_latency", errors
        ):
            sampled += 1
        if is_count(link.get("frames_sent")) and link["frames_sent"] > 0:
            framed += 1
        window = link.get("send_window")
        bound = link.get("kmc_bound")
        if window is not None:
            if not is_count(window) or window == 0:
                errors.append(
                    f"{where} ({name}).send_window: not a positive integer"
                )
                continue
            windowed += 1
        if bound is not None and (not is_count(bound) or bound == 0):
            errors.append(f"{where} ({name}).kmc_bound: not a positive integer")
            continue
        if window is not None and bound is not None and window > bound:
            errors.append(
                f"{where} ({name}): send_window {window} exceeds "
                f"verified k-MC bound {bound}"
            )
    if windowed == 0:
        errors.append(
            "telemetry.transport: no link carries a registered send window"
        )
    if framed == 0:
        errors.append("telemetry.transport: no link moved any frames")
    if sampled == 0:
        errors.append(
            "telemetry.transport: no link recorded wire latency samples "
            "— the frame trace-context path is dead"
        )


def check_sessions(sessions, errors):
    if not isinstance(sessions, list) or not sessions:
        errors.append("telemetry.sessions: missing or empty")
        return
    recorded = 0
    for i, entry in enumerate(sessions):
        where = f"telemetry.sessions[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        role = entry.get("role")
        if not isinstance(role, str) or not role:
            errors.append(f"{where}.role: missing or not a string")
        if "lifetime_ns" not in entry:
            errors.append(f"{where} ({role}): no `lifetime_ns` member")
        elif check_hist(
            entry["lifetime_ns"], f"{where} ({role}).lifetime_ns", errors
        ):
            recorded += 1
    if recorded == 0:
        errors.append("telemetry.sessions: no role recorded a lifetime")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"check_telemetry: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)

    errors = []
    for key in ("git_revision", "rustc_version", "generated_at"):
        if not isinstance(report.get(key), str) or not report[key]:
            errors.append(f"`{key}`: missing or not a non-empty string")
    if not is_count(report.get("host_parallelism")):
        errors.append("`host_parallelism`: missing or not a non-negative integer")

    telemetry = report.get("telemetry")
    if not isinstance(telemetry, dict):
        errors.append("`telemetry`: missing or not an object")
        fail(errors)

    check_scheduler(telemetry.get("scheduler"), errors)
    check_channels(telemetry.get("channels"), errors)
    check_transport(telemetry.get("transport"), errors)
    check_sessions(telemetry.get("sessions"), errors)
    if errors:
        fail(errors)

    scheduler = telemetry["scheduler"]
    channels = telemetry["channels"]
    transport = telemetry["transport"]
    sessions = telemetry["sessions"]
    bounded = sum(1 for link in channels if link.get("kmc_bound") is not None)
    windowed = sum(
        1 for link in transport if link.get("send_window") is not None
    )
    sampled = sum(1 for link in channels if link.get("latency") is not None)
    print(
        f"check_telemetry: ok — {len(scheduler)} scheduler sweep(s), "
        f"{len(channels)} channel(s), {bounded} with verified k-MC bounds, "
        f"{sampled} with latency histograms, {len(transport)} transport "
        f"link(s), {windowed} with socket windows, {len(sessions)} session "
        f"role(s)"
    )


if __name__ == "__main__":
    main()
