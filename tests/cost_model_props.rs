//! Property tests for the profile-guided cost model (ISSUE 10):
//!
//! (a) every candidate accepted under the new rewrite gaps — hoisting a
//!     common send out of external-choice branches, and receive-receive
//!     reordering — re-verifies as an asynchronous subtype, and the
//!     whole system stays k-MC clean with the rewritten role swapped in;
//! (b) cost-model ranking is monotone: inflating one edge's measured
//!     per-byte cost never *raises* the estimated saving of a candidate
//!     that sends on that edge, leaves candidates avoiding the edge
//!     untouched, and therefore never lifts an on-edge candidate above
//!     an off-edge candidate that already out-ranked it;
//! (c) the acceptance pin: with the committed `BENCH_fig6.json` profile
//!     loaded through `CostModel::from_profile`, the optimiser ranks the
//!     small-payload hoist above the large-payload hoist on a protocol
//!     where the receives-crossed proxy scores them equal.

use optimiser::cost::{CostModel, CostSource, EdgeCost};
use optimiser::rewrite::Step;
use optimiser::Config;
use proptest::prelude::*;
use theory::Name;

fn parse(text: &str) -> theory::LocalType {
    theory::local::parse(text).expect("test local type parses")
}

fn optimise(role: &str, projection: &str, config: &Config) -> optimiser::Optimised {
    optimiser::optimise(&Name::from(role), &parse(projection), config)
        .expect("projection converts to an FSM")
}

/// Re-checks every accepted candidate independently of the search's own
/// verification pass.
fn assert_reverified(outcome: &optimiser::Optimised, bound: usize) {
    assert!(
        !outcome.candidates.is_empty(),
        "{}: the rewrite under test generated no verified candidate",
        outcome.role
    );
    for candidate in &outcome.candidates {
        assert!(candidate.stats.verdict);
        assert!(
            subtyping::is_subtype(&candidate.fsm, &outcome.projection_fsm, bound),
            "accepted candidate of {} does not re-verify: {}",
            outcome.role,
            candidate.local
        );
    }
}

/// Swaps `role`'s projection for `optimised` inside a closed system of
/// (role, local type) pairs and checks whole-system k-MC.
fn assert_system_safe(
    system: &[(&str, &str)],
    role: &str,
    optimised: &theory::LocalType,
    k: usize,
) {
    let machines: Vec<_> = system
        .iter()
        .map(|(name, text)| {
            let local = if *name == role {
                optimised.clone()
            } else {
                parse(text)
            };
            bench::verification::to_fsm(name, &local)
        })
        .collect();
    let system = kmc::System::new(machines).expect("distinct roles");
    kmc::check(&system, k).unwrap_or_else(|violation| {
        panic!("system with optimised `{role}` violates {k}-MC: {violation}")
    });
}

/// (a) for the external-choice hoist: the common `ack` send is pulled
/// above the choice, every candidate re-verifies, and the closed
/// three-role system stays 2-MC clean with the rewritten role in place.
#[test]
fn branch_hoist_candidates_reverify_and_system_stays_safe() {
    let config = Config::with_depth(1);
    let outcome = optimise(
        "m",
        "&{ p?go . q!ack(i32) . end, p?halt . q!ack(i32) . end }",
        &config,
    );
    assert_reverified(&outcome, config.bound);
    let best = outcome.best().expect("branch hoist improves the role");
    assert!(best
        .derivation
        .iter()
        .any(|step| matches!(step, Step::HoistFromBranches { .. })));
    assert_system_safe(
        &[
            ("p", "+{ m!go . end, m!halt . end }"),
            (
                "m",
                "&{ p?go . q!ack(i32) . end, p?halt . q!ack(i32) . end }",
            ),
            ("q", "m?ack(i32) . end"),
        ],
        "m",
        &best.local,
        2,
    );
}

/// (a) for receive-receive reordering: the swapped variant verifies, and
/// the closed system stays 2-MC clean with the reordered receiver.
#[test]
fn swapped_receives_reverify_and_system_stays_safe() {
    let config = Config::with_depth(1);
    let outcome = optimise("r", "p?a . q?b . end", &config);
    assert_reverified(&outcome, config.bound);
    let swapped = outcome
        .candidates
        .iter()
        .find(|c| {
            c.derivation
                .iter()
                .any(|step| matches!(step, Step::SwapReceives { .. }))
        })
        .expect("the receive swap is generated and verified");
    assert_system_safe(
        &[
            ("p", "r!a . end"),
            ("q", "r!b . end"),
            ("r", "p?a . q?b . end"),
        ],
        "r",
        &swapped.local,
        2,
    );
}

/// The monotonicity workload: two independent hoists, one sending a
/// bulky payload on edge `q`, one sending a tiny payload on edge `s`.
const TWO_EDGE_PROJECTION: &str = "p?a . q!big(str) . p?b . s!tiny(i32) . end";

/// True when any derivation step moves a send on the given edge.
fn sends_on_edge(candidate: &optimiser::Candidate, edge: &str) -> bool {
    let edge = Name::from(edge);
    candidate.derivation.iter().any(|step| match step {
        Step::HoistPastReceive { send_peer, .. } => *send_peer == edge,
        Step::HoistFromBranches { send_peer, .. } => *send_peer == edge,
        Step::Anticipate { peer, .. } => *peer == edge,
        Step::HoistPastSend { .. } | Step::SwapReceives { .. } => false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (b) inflating edge `q`'s per-byte cost: on-edge savings never
    /// increase, off-edge savings are untouched, and no on-edge
    /// candidate overtakes an off-edge candidate that out-ranked it.
    #[test]
    fn inflating_an_edge_never_ranks_its_candidates_higher(factor in 1.0f64..64.0) {
        let base_config =
            Config::with_depth(1).with_cost(CostModel::default_table());
        let mut inflated_model = CostModel::default_table();
        let spsc = *inflated_model.class("spsc").expect("spsc class present");
        inflated_model.set_edge(
            "q",
            EdgeCost { ns_per_byte: spsc.ns_per_byte * factor, ..spsc },
        );
        let inflated_config = Config::with_depth(1).with_cost(inflated_model);

        let base = optimise("r", TWO_EDGE_PROJECTION, &base_config);
        let inflated = optimise("r", TWO_EDGE_PROJECTION, &inflated_config);
        prop_assert!(base.candidates.iter().any(|c| sends_on_edge(c, "q")));
        prop_assert!(base.candidates.iter().any(|c| !sends_on_edge(c, "q")));

        let saving = |outcome: &optimiser::Optimised, local: &theory::LocalType| {
            outcome
                .candidates
                .iter()
                .find(|c| c.local == *local)
                .map(|c| c.estimated_saving_ns.expect("cost model configured"))
        };
        for candidate in &base.candidates {
            let before = candidate.estimated_saving_ns.expect("cost model configured");
            let after = saving(&inflated, &candidate.local)
                .expect("same candidate set under both models");
            if sends_on_edge(candidate, "q") {
                prop_assert!(
                    after <= before,
                    "inflating edge q raised {}: {before} -> {after}",
                    candidate.local
                );
            } else {
                prop_assert!(
                    after == before,
                    "edge-q inflation moved off-edge candidate {}: {before} -> {after}",
                    candidate.local
                );
            }
        }

        // Rank statement: an on-edge candidate never rises above an
        // off-edge candidate that out-ranked it under the base model.
        let rank = |outcome: &optimiser::Optimised, local: &theory::LocalType| {
            outcome
                .candidates
                .iter()
                .position(|c| c.local == *local)
                .expect("candidate present in both runs")
        };
        for on in base.candidates.iter().filter(|c| sends_on_edge(c, "q")) {
            for off in base.candidates.iter().filter(|c| !sends_on_edge(c, "q")) {
                if rank(&base, &off.local) < rank(&base, &on.local) {
                    prop_assert!(
                        rank(&inflated, &off.local) < rank(&inflated, &on.local),
                        "inflating edge q lifted {} above {}",
                        on.local,
                        off.local
                    );
                }
            }
        }
    }
}

/// (c) the acceptance pin. Receives-crossed scores the bulky hoist
/// (`q!big(str)` past `p?a`) and the cheap hoist (`s!tiny(i32)` past
/// `p?b`) identically — and generation order ranks the bulky one first.
/// The measured profile from the committed artifact must flip that:
/// the per-byte cost makes parking 1 KiB in the channel more expensive
/// than parking 4 bytes, so the cheap hoist wins.
#[test]
fn committed_profile_ranks_cheap_payload_hoist_above_bulky_one() {
    let artifact = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fig6.json");
    let profile = std::fs::read_to_string(artifact).expect("committed BENCH_fig6.json readable");
    let model = CostModel::from_profile(&profile).expect("committed artifact carries edge_costs");
    assert_eq!(model.source(), CostSource::Measured);

    fn single(candidate: &optimiser::Candidate) -> Option<&Step> {
        match candidate.derivation.as_slice() {
            [step] => Some(step),
            _ => None,
        }
    }
    let is_bulky = |candidate: &optimiser::Candidate| {
        matches!(
            single(candidate),
            Some(Step::HoistPastReceive { send_peer, .. }) if *send_peer == Name::from("q")
        )
    };
    let is_cheap = |candidate: &optimiser::Candidate| {
        matches!(
            single(candidate),
            Some(Step::HoistPastReceive { send_peer, .. }) if *send_peer == Name::from("s")
        )
    };
    let rank_of = |outcome: &optimiser::Optimised, pred: &dyn Fn(&optimiser::Candidate) -> bool| {
        outcome
            .candidates
            .iter()
            .position(pred)
            .expect("single-step hoist candidate present")
    };

    // The proxy ties the two single-step hoists on score (1 crossed
    // receive each) and ranks the bulky one first.
    let proxy = optimise("r", TWO_EDGE_PROJECTION, &Config::with_depth(1));
    let (bulky_rank, cheap_rank) = (rank_of(&proxy, &is_bulky), rank_of(&proxy, &is_cheap));
    assert_eq!(
        proxy.candidates[bulky_rank].score,
        proxy.candidates[cheap_rank].score
    );
    assert!(bulky_rank < cheap_rank, "proxy baseline lost its tie-break");

    // The measured profile flips the pair, with a positive best saving.
    let config = Config::with_depth(1).with_cost(model);
    let measured = optimise("r", TWO_EDGE_PROJECTION, &config);
    assert_eq!(measured.cost_source, Some(CostSource::Measured));
    assert!(
        rank_of(&measured, &is_cheap) < rank_of(&measured, &is_bulky),
        "measured profile does not rank the small-payload hoist above the bulky one"
    );
    let best = measured.best().expect("profile finds an improvement");
    assert!(best.estimated_saving_ns.expect("model configured") > 0.0);
    assert!(is_cheap(best) || !is_bulky(best));
}
