//! Integration test: the complete top-down workflow (paper Fig 1a) for
//! every protocol with a global type — Scribble → projection → FSM →
//! (optimisation) → subtyping verification.

use theory::projection::project;
use theory::scribble;

fn project_fsm(source: &str, role: &str) -> theory::Fsm {
    let protocol = scribble::parse(source).expect("well-formed Scribble");
    let local = project(&protocol.body, &role.into()).expect("projectable");
    theory::fsm::from_local(&role.into(), &local).expect("convertible")
}

fn fsm(role: &str, text: &str) -> theory::Fsm {
    theory::fsm::from_local(&role.into(), &theory::local::parse(text).unwrap()).unwrap()
}

const STREAMING: &str = r#"
    global protocol Streaming(role s, role t) {
        rec loop {
            ready() from t to s;
            choice at s {
                value() from s to t;
                continue loop;
            } or {
                stop() from s to t;
            }
        }
    }
"#;

const DOUBLE_BUFFERING: &str = r#"
    global protocol DoubleBuffering(role s, role k, role t) {
        rec loop {
            ready() from k to s;
            value() from s to k;
            ready() from t to k;
            value() from k to t;
            continue loop;
        }
    }
"#;

const RING: &str = r#"
    global protocol Ring(role a, role b, role c) {
        rec loop {
            v() from a to b;
            v() from b to c;
            v() from c to a;
            continue loop;
        }
    }
"#;

#[test]
fn streaming_projection_matches_fig3() {
    let source = project_fsm(STREAMING, "s");
    let expected = fsm("s", "rec x . t?ready . +{ t!value.x, t!stop.end }");
    // Equivalence in both directions via subtyping.
    assert!(subtyping::is_subtype(&source, &expected, 4));
    assert!(subtyping::is_subtype(&expected, &source, 4));
}

#[test]
fn double_buffering_optimised_kernel_verifies_against_scribble_projection() {
    let projected = project_fsm(DOUBLE_BUFFERING, "k");
    let optimised = fsm(
        "k",
        "s!ready . rec x . s!ready . s?value . t?ready . t!value . x",
    );
    assert!(subtyping::is_subtype(&optimised, &projected, 4));
    assert!(!subtyping::is_subtype(&projected, &optimised, 4));
}

#[test]
fn double_buffering_projections_are_kmc_compatible() {
    let protocol = scribble::parse(DOUBLE_BUFFERING).unwrap();
    let machines = protocol
        .roles
        .iter()
        .map(|role| {
            let local = project(&protocol.body, role).unwrap();
            theory::fsm::from_local(role, &local).unwrap()
        })
        .collect();
    let system = kmc::System::new(machines).unwrap();
    kmc::check(&system, 1).unwrap();
}

#[test]
fn ring_optimisation_verifies_locally_and_globally() {
    let protocol = scribble::parse(RING).unwrap();
    // b's projection receives from a then sends to c; the optimisation
    // swaps the two.
    let projected_b = project_fsm(RING, "b");
    let optimised_b = fsm("b", "rec x . c!v . a?v . x");
    assert!(subtyping::is_subtype(&optimised_b, &projected_b, 4));

    // Whole optimised system via k-MC: a unchanged, b and c optimised.
    let optimised = vec![
        project_fsm(RING, "a"),
        optimised_b,
        fsm("c", "rec x . a!v . b?v . x"),
    ];
    let system = kmc::System::new(optimised).unwrap();
    kmc::check(&system, 1).unwrap();
    let _ = protocol;
}

#[test]
fn every_paper_projection_round_trips_through_fsm() {
    for (source, roles) in [
        (STREAMING, vec!["s", "t"]),
        (DOUBLE_BUFFERING, vec!["s", "k", "t"]),
        (RING, vec!["a", "b", "c"]),
    ] {
        let protocol = scribble::parse(source).unwrap();
        for role in roles {
            let local = project(&protocol.body, &role.into()).unwrap();
            let machine = theory::fsm::from_local(&role.into(), &local).unwrap();
            let back = theory::fsm::to_local(&machine).unwrap();
            let machine2 = theory::fsm::from_local(&role.into(), &back).unwrap();
            // FSM → local → FSM is structure-preserving.
            assert!(subtyping::is_subtype(&machine, &machine2, 4));
            assert!(subtyping::is_subtype(&machine2, &machine, 4));
        }
    }
}

#[test]
fn unsafe_optimisations_are_rejected_end_to_end() {
    // Paper Example 2 in Scribble form.
    let source = r#"
        global protocol Example2(role p, role q) {
            l1() from p to q;
            l2() from q to p;
        }
    "#;
    let projected_p = project_fsm(source, "p");
    let projected_q = project_fsm(source, "q");

    // Reordering q (send first) is safe.
    let optimised_q = fsm("q", "p!l2 . p?l1 . end");
    assert!(subtyping::is_subtype(&optimised_q, &projected_q, 2));

    // Reordering p (receive first) deadlocks and is rejected locally...
    let bad_p = fsm("p", "q?l2 . q!l1 . end");
    assert!(!subtyping::is_subtype(&bad_p, &projected_p, 2));

    // ...and globally.
    let system = kmc::System::new(vec![bad_p, fsm("q", "p?l1 . p!l2 . end")]).unwrap();
    assert!(kmc::check(&system, 2).is_err());
}
