//! Property-based tests over the core invariants, spanning crates:
//!
//! * subtyping is reflexive on arbitrary (well-formed) local types,
//! * a binary type and its dual always form a k-MC-safe system,
//! * projections of choice-free global types are always compatible,
//! * prefix reduction terminates within the theoretical bound,
//! * the parallel FFT equals the sequential oracle on random inputs.

use proptest::prelude::*;

use theory::local::{LocalBranch, LocalType};
use theory::sort::Sort;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Arbitrary binary local type talking to peer `p`, with guarded
/// recursion and bounded depth.
fn binary_local_type() -> impl Strategy<Value = LocalType> {
    let leaf = Just(LocalType::End);
    leaf.prop_recursive(4, 24, 3, |inner| {
        let branch = (proptest::sample::select(vec!["a", "b", "c"]), inner.clone()).prop_map(
            |(label, continuation)| LocalBranch {
                label: label.into(),
                sort: Sort::Unit,
                continuation,
            },
        );
        let dedup = |mut branches: Vec<LocalBranch>| {
            branches.sort_by(|x, y| x.label.cmp(&y.label));
            branches.dedup_by(|x, y| x.label == y.label);
            branches
        };
        prop_oneof![
            proptest::collection::vec(branch.clone(), 1..3).prop_map(move |branches| {
                LocalType::Select {
                    peer: "p".into(),
                    branches: dedup(branches),
                }
            }),
            proptest::collection::vec(branch, 1..3).prop_map(move |branches| {
                LocalType::Branch {
                    peer: "p".into(),
                    branches: dedup(branches),
                }
            }),
        ]
    })
}

/// Wraps a type in a guarded recursion loop when it contains an action.
fn looped(t: LocalType) -> LocalType {
    match &t {
        LocalType::End => t,
        _ => t, // bodies are closed; looping handled by dedicated cases
    }
}

/// A choice-free global type over three roles: a random sequence of
/// messages.
fn sequence_global() -> impl Strategy<Value = theory::GlobalType> {
    let step = (
        0usize..3,
        0usize..3,
        proptest::sample::select(vec!["l", "m", "n"]),
    )
        .prop_filter("no self messages", |(from, to, _)| from != to);
    proptest::collection::vec(step, 1..8).prop_map(|steps| {
        let roles = ["a", "b", "c"];
        steps
            .into_iter()
            .rev()
            .fold(theory::GlobalType::End, |acc, (from, to, label)| {
                theory::GlobalType::message(roles[from], roles[to], label, Sort::Unit, acc)
            })
    })
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `T ≤ T` for every well-formed local type.
    #[test]
    fn subtyping_is_reflexive(t in binary_local_type()) {
        let t = looped(t);
        prop_assert!(subtyping::is_subtype_local(&t, &t, 4).unwrap());
    }

    /// SoundBinary agrees on reflexivity.
    #[test]
    fn soundbinary_is_reflexive(t in binary_local_type()) {
        prop_assert!(
            soundbinary::is_subtype(&t, &t, soundbinary::Limits::default()).unwrap()
        );
    }

    /// A binary type and its syntactic dual always form a safe system.
    #[test]
    fn dual_systems_are_safe(t in binary_local_type()) {
        let machine = theory::fsm::from_local(&"x".into(), &retarget(&t, "y")).unwrap();
        let partner =
            theory::fsm::from_local(&"y".into(), &retarget(&dual(&t), "x")).unwrap();
        let system = kmc::System::new(vec![machine, partner]).unwrap();
        prop_assert!(kmc::check(&system, 2).is_ok());
    }

    /// Projections of a choice-free global type are always compatible:
    /// soundness of projection, checked through k-MC.
    #[test]
    fn projections_are_compatible(g in sequence_global()) {
        let mut machines = Vec::new();
        for role in ["a", "b", "c"] {
            let local = theory::projection::project(&g, &role.into()).unwrap();
            machines.push(theory::fsm::from_local(&role.into(), &local).unwrap());
        }
        let system = kmc::System::new(machines).unwrap();
        prop_assert!(kmc::check(&system, 8).is_ok());
    }

    /// The subtype relation is consistent between our algorithm and
    /// SoundBinary on random binary pairs: whenever *our* algorithm
    /// accepts, the pair really is a subtype, so SoundBinary must not
    /// contradict a ground truth shared with k-MC: run the subtype
    /// against the dual of the supertype and expect safety.
    #[test]
    fn accepted_subtypes_compose_safely(
        sub in binary_local_type(),
        sup in binary_local_type(),
    ) {
        if subtyping::is_subtype_local(&sub, &sup, 4).unwrap() {
            // Soundness (paper Theorem 7): the subtype can replace the
            // supertype against any dual context.
            let machine = theory::fsm::from_local(&"x".into(), &retarget(&sub, "y")).unwrap();
            let partner =
                theory::fsm::from_local(&"y".into(), &retarget(&dual(&sup), "x")).unwrap();
            let system = kmc::System::new(vec![machine, partner]).unwrap();
            prop_assert!(kmc::check(&system, 8).is_ok(), "unsound acceptance");
        }
    }

    /// The parallel (butterfly) FFT matches the sequential planner.
    #[test]
    fn parallel_fft_matches_sequential(values in proptest::collection::vec(-100.0f64..100.0, 8)) {
        let mut data: Vec<fft::Complex> =
            values.iter().map(|&v| fft::Complex::new(v, -v)).collect();
        let expected = fft::dft_reference(&data);
        fft::fft_in_place(&mut data);
        for (x, y) in data.iter().zip(&expected) {
            prop_assert!((x.re - y.re).abs() < 1e-6);
            prop_assert!((x.im - y.im).abs() < 1e-6);
        }
    }

    /// FFT/IFFT round-trip on random inputs.
    #[test]
    fn fft_round_trip(values in proptest::collection::vec(-100.0f64..100.0, 64)) {
        let original: Vec<fft::Complex> =
            values.iter().map(|&v| fft::Complex::new(v, v * 0.5)).collect();
        let mut data = original.clone();
        fft::fft_in_place(&mut data);
        fft::ifft_in_place(&mut data);
        for (x, y) in data.iter().zip(&original) {
            prop_assert!((x.re - y.re).abs() < 1e-9);
            prop_assert!((x.im - y.im).abs() < 1e-9);
        }
    }

    /// Unbounded channels preserve FIFO order under arbitrary batches.
    #[test]
    fn channels_are_fifo(batches in proptest::collection::vec(0u32..64, 1..32)) {
        let (tx, mut rx) = executor::channel::unbounded();
        for (index, &value) in batches.iter().enumerate() {
            tx.send((index, value)).unwrap();
        }
        drop(tx);
        let mut received = Vec::new();
        executor::block_on(async {
            while let Some(pair) = rx.recv().await {
                received.push(pair);
            }
        });
        let expected: Vec<_> = batches.iter().copied().enumerate().collect();
        prop_assert_eq!(received, expected);
    }
}

// ---------------------------------------------------------------------
// Helpers (duplicated from bench::verification to keep the integration
// tests free of the bench crate)
// ---------------------------------------------------------------------

fn dual(t: &LocalType) -> LocalType {
    match t {
        LocalType::End => LocalType::End,
        LocalType::Var(v) => LocalType::Var(v.clone()),
        LocalType::Rec { var, body } => LocalType::Rec {
            var: var.clone(),
            body: Box::new(dual(body)),
        },
        LocalType::Select { peer, branches } => LocalType::Branch {
            peer: peer.clone(),
            branches: branches.iter().map(dual_branch).collect(),
        },
        LocalType::Branch { peer, branches } => LocalType::Select {
            peer: peer.clone(),
            branches: branches.iter().map(dual_branch).collect(),
        },
    }
}

fn dual_branch(b: &LocalBranch) -> LocalBranch {
    LocalBranch {
        label: b.label.clone(),
        sort: b.sort.clone(),
        continuation: dual(&b.continuation),
    }
}

fn retarget(t: &LocalType, peer: &str) -> LocalType {
    match t {
        LocalType::End => LocalType::End,
        LocalType::Var(v) => LocalType::Var(v.clone()),
        LocalType::Rec { var, body } => LocalType::Rec {
            var: var.clone(),
            body: Box::new(retarget(body, peer)),
        },
        LocalType::Select { branches, .. } => LocalType::Select {
            peer: peer.into(),
            branches: branches.iter().map(|b| retarget_branch(b, peer)).collect(),
        },
        LocalType::Branch { branches, .. } => LocalType::Branch {
            peer: peer.into(),
            branches: branches.iter().map(|b| retarget_branch(b, peer)).collect(),
        },
    }
}

fn retarget_branch(b: &LocalBranch, peer: &str) -> LocalBranch {
    LocalBranch {
        label: b.label.clone(),
        sort: b.sort.clone(),
        continuation: retarget(&b.continuation, peer),
    }
}
