//! Integration test: the session-typed runtime across crates — roles,
//! macros, executor and verification working together.

use rumpsteak::{
    choice, messages, roles, session, try_session, Branch, End, IntoSession, Receive, Select, Send,
};

pub struct Ping(pub u32);
pub struct Pong(pub u32);
pub struct Quit;

messages! {
    enum Label { Ping(Ping): u32, Pong(Pong): u32, Quit(Quit) }
}

roles! {
    message Label;
    Client { s: Server },
    Server { c: Client },
}

session! {
    struct ClientSession<'q> for Client = Select<'q, Client, Server, ClientChoice<'q>>;
    struct ServerSession<'q> for Server = Branch<'q, Server, Client, ServerChoice<'q>>;
}

choice! {
    enum ClientChoice<'q> for Client {
        Ping(Ping) => Receive<'q, Client, Server, Pong, ClientSession<'q>>,
        Quit(Quit) => End<'q, Client>,
    }
}

choice! {
    enum ServerChoice<'q> for Server {
        Ping(Ping) => Send<'q, Server, Client, Pong, ServerSession<'q>>,
        Quit(Quit) => End<'q, Server>,
    }
}

async fn client(role: &mut Client, rounds: u32) -> rumpsteak::Result<u32> {
    try_session(role, |mut s: ClientSession<'_>| async move {
        let mut acc = 0;
        for i in 0..rounds {
            let waiting = s.into_session().select(Ping(i)).await?;
            let (Pong(v), next) = waiting.receive().await?;
            acc += v;
            s = next;
        }
        let end = s.into_session().select(Quit).await?;
        Ok((acc, end))
    })
    .await
}

async fn server(role: &mut Server) -> rumpsteak::Result<u32> {
    try_session(role, |mut s: ServerSession<'_>| async move {
        let mut served = 0;
        loop {
            match s.into_session().branch().await? {
                ServerChoice::Ping(Ping(v), reply) => {
                    s = reply.send(Pong(v * 2)).await?;
                    served += 1;
                }
                ServerChoice::Quit(Quit, end) => return Ok((served, end)),
            }
        }
    })
    .await
}

#[test]
fn ping_pong_session_runs_to_completion() {
    let rt = executor::Runtime::new(2);
    let (mut c, mut s) = connect();
    let client_task = rt.spawn(async move { client(&mut c, 10).await });
    let server_task = rt.spawn(async move { server(&mut s).await });
    // Σ 2i for i in 0..10 = 90.
    assert_eq!(rt.block_on(client_task).unwrap().unwrap(), 90);
    assert_eq!(rt.block_on(server_task).unwrap().unwrap(), 10);
}

#[test]
fn roles_are_reusable_across_sequential_sessions() {
    // Channel reuse (paper §2.1): the same roles — and their channels —
    // host three consecutive sessions.
    let rt = executor::Runtime::new(2);
    let (mut c, s) = connect();
    let mut server_role = Some(s);
    for round in 0u32..3 {
        let mut s_taken = server_role.take().expect("returned each round");
        let server_task = rt.spawn(async move {
            let served = server(&mut s_taken).await;
            (s_taken, served)
        });
        let total = rt.block_on(client(&mut c, round + 1)).unwrap();
        let (s_back, served) = rt.block_on(server_task).unwrap();
        server_role = Some(s_back);
        assert_eq!(served.unwrap(), round + 1);
        assert_eq!(total, round * (round + 1));
    }
}

#[test]
fn serialized_session_is_kmc_safe() {
    let system = kmc::System::new(vec![
        rumpsteak::serialize::<ClientSession<'static>>().unwrap(),
        rumpsteak::serialize::<ServerSession<'static>>().unwrap(),
    ])
    .unwrap();
    kmc::check(&system, 1).unwrap();
}

#[test]
fn dropped_peer_surfaces_channel_closed() {
    let rt = executor::Runtime::new(2);
    let (mut c, s) = connect();
    drop(s);
    let result = rt.block_on(client(&mut c, 1));
    assert!(matches!(
        result,
        Err(rumpsteak::Error::ChannelClosed) | Err(rumpsteak::Error::UnexpectedMessage)
    ));
}
