//! Property tests for the AMR optimiser (ISSUE 4 acceptance): every
//! candidate the optimiser **accepts** is
//!
//! (a) a verified asynchronous subtype of its projection — re-checked
//!     here independently of the check the search itself ran — and
//! (b) safe in the whole system: replacing *every* role by its best
//!     verified reordering simultaneously leaves the system k-MC
//!     clean (no deadlocks, reception errors or orphans),
//!
//! across ring and k-buffering pipeline instantiations `n ∈ 2..=6` and
//! a sweep of unfold depths. The ring is the bench family (one FSM per
//! participant, where the send-first reordering and its deeper
//! anticipated variants all fire); the pipeline is the parameterised
//! `kbuffering.scr` template through the codegen + optimise pass, where
//! the source's choice-hoist fires and the kernels' anticipations must
//! all be *rejected* (their exit branches would unbalance the loop).

use bench::verification::{ring, to_fsm};
use proptest::prelude::*;
use theory::Name;

const KBUFFERING: &str = include_str!("../crates/codegen/tests/protocols/kbuffering.scr");

/// (a) for one projection: every accepted candidate re-verifies.
fn assert_candidates_verified(role: &str, projection: &theory::LocalType, depth: usize) {
    let config = optimiser::Config::with_depth(depth);
    let outcome = optimiser::optimise(&Name::from(role), projection, &config)
        .expect("projection converts to an FSM");
    for candidate in &outcome.candidates {
        assert!(
            subtyping::is_subtype(&candidate.fsm, &outcome.projection_fsm, config.bound),
            "accepted candidate of {role} (depth {depth}) is not a subtype: {}",
            candidate.local
        );
        assert!(candidate.stats.verdict);
    }
}

/// (b) for the bench ring: all `n` roles replaced by their best verified
/// reordering at once.
fn assert_optimised_ring_safe(n: usize, depth: usize) {
    let config = optimiser::Config::with_depth(depth);
    let mut machines = Vec::with_capacity(n);
    for i in 0..n {
        let role = format!("p{i}");
        let projection = ring::projected(i, n);
        let outcome =
            optimiser::optimise(&Name::from(role.as_str()), &projection, &config).unwrap();
        machines.push(to_fsm(&role, outcome.best_local()));
    }
    let system = kmc::System::new(machines).expect("distinct roles");
    // Anticipated sends need channel room: one slot per unfold plus the
    // base token in flight.
    kmc::check(&system, depth + 1).unwrap_or_else(|violation| {
        panic!("optimised ring n={n} depth={depth} violates k-MC: {violation}")
    });
}

/// (b) for the generated pipeline: the codegen optimise pass swaps every
/// role at once, then whole-system k-MC must still hold.
fn assert_optimised_pipeline_safe(n: usize, depth: usize) {
    let config = optimiser::Config::with_depth(depth);
    let mut analysis = codegen::analyse_with(KBUFFERING, &[(Name::from("n"), n as i64)])
        .unwrap_or_else(|e| panic!("kbuffering.scr fails to analyse at n={n}: {e}"));
    codegen::optimise(&mut analysis, &config).expect("optimise pass succeeds");
    let system = kmc::System::new(analysis.fsms).expect("distinct roles");
    // The kernels' anticipations are all rejected (exit branches), so the
    // only accepted reordering is the source's choice-hoist: one message
    // of lookahead, k = 2 regardless of depth (the k-MC space at n = 6
    // grows steeply with k, and this test runs in debug builds).
    kmc::check(&system, 2).unwrap_or_else(|violation| {
        panic!("optimised pipeline n={n} depth={depth} violates k-MC: {violation}")
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ring_candidates_verified_and_system_safe(n in 2..=6usize, depth in 0..=1usize) {
        for i in 0..n {
            assert_candidates_verified(&format!("p{i}"), &ring::projected(i, n), depth);
        }
        assert_optimised_ring_safe(n, depth);
    }

    // Sampled at n <= 5: whole-pipeline k-MC at n = 6 costs seconds per
    // run in debug builds, and the exhaustive endpoint test below covers
    // n = 6 once.
    #[test]
    fn pipeline_candidates_verified_and_system_safe(n in 2..=5usize, depth in 0..=1usize) {
        let analysis = codegen::analyse_with(KBUFFERING, &[(Name::from("n"), n as i64)])
            .expect("kbuffering.scr analyses");
        for (role, projection) in &analysis.locals {
            assert_candidates_verified(role.as_str(), projection, depth);
        }
        assert_optimised_pipeline_safe(n, depth);
    }
}

/// The endpoints of the sweep, pinned exhaustively (the proptest cases
/// above sample the grid).
#[test]
fn every_instantiation_2_to_6_safe_at_depth_1() {
    for n in 2..=6 {
        assert_optimised_ring_safe(n, 1);
        assert_optimised_pipeline_safe(n, 1);
    }
}
