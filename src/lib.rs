//! Umbrella crate for the Rumpsteak reproduction workspace; see README.md.
